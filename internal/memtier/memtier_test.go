package memtier

import (
	"math"
	"testing"
)

func TestStudyReproducesPaperClaims(t *testing.T) {
	r, err := Study(20000, 20240403)
	if err != nil {
		t.Fatal(err)
	}
	// §III: "98% of applications incur <5% slowdown with CXL".
	if r.UnderFivePct < 0.97 {
		t.Errorf("VMs under 5%% slowdown = %.3f, want >= 0.97 (paper: 0.98)", r.UnderFivePct)
	}
	if r.UnderFivePct >= 1 {
		t.Errorf("every VM under 5%%: predictor unrealistically conservative")
	}
	// §III: "untouched memory is almost half of a VM's memory
	// capacity".
	if math.Abs(r.MeanUntouched-0.5) > 0.08 {
		t.Errorf("mean untouched fraction = %.3f, want ~0.5", r.MeanUntouched)
	}
	// Reuse must be material: a meaningful share of memory lands on
	// CXL.
	if r.CXLShare < 0.15 {
		t.Errorf("CXL share = %.3f, want >= 0.15", r.CXLShare)
	}
	// ~20% of core-hours are CXL-friendly; their memory runs fully on
	// CXL.
	if r.EntirelyCXLShare < 0.1 || r.EntirelyCXLShare > 0.35 {
		t.Errorf("entirely-CXL share = %.3f, want ~0.2", r.EntirelyCXLShare)
	}
}

func TestFriendlyAppsRunEntirelyOnCXL(t *testing.T) {
	p := NewPredictor()
	pl, err := p.Place(Behavior{App: "Img-DNN", AllocGB: 64, TouchedFrac: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.EntirelyCXL || pl.LocalGB != 0 || pl.CXLGB != 64 {
		t.Fatalf("friendly app placement = %+v, want entirely CXL", pl)
	}
	s, err := Slowdown(Behavior{App: "Img-DNN", AllocGB: 64, TouchedFrac: 0.9}, pl)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("friendly app slowdown = %v, want 1", s)
	}
}

func TestFallbackWithoutHistory(t *testing.T) {
	p := NewPredictor()
	pl, err := p.Place(Behavior{App: "Moses", AllocGB: 100, TouchedFrac: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl.LocalGB-95) > 1e-9 {
		t.Fatalf("fallback local = %v, want 95 (95%% conservative)", pl.LocalGB)
	}
}

func TestPredictorLearns(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 100; i++ {
		p.Observe("Moses", 0.5)
	}
	pl, err := p.Place(Behavior{App: "Moses", AllocGB: 100, TouchedFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Quantile of constant 0.5 history + 4% margin = 54 GB local.
	if math.Abs(pl.LocalGB-54) > 0.5 {
		t.Fatalf("learned local = %v, want ~54", pl.LocalGB)
	}
	if pl.CXLGB < 40 {
		t.Fatalf("learned CXL share = %v, want substantial reuse", pl.CXLGB)
	}
}

func TestSlowdownMechanics(t *testing.T) {
	// Moses (MemLatSens 0.5): 60 GB touched with 30 GB local means
	// half the accesses overflow: slowdown = 1 + 0.5*0.5 = 1.25.
	b := Behavior{App: "Moses", AllocGB: 100, TouchedFrac: 0.6}
	s, err := Slowdown(b, Placement{LocalGB: 30, CXLGB: 70})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.25) > 1e-9 {
		t.Fatalf("slowdown = %v, want 1.25", s)
	}
	// Touched fits local: no slowdown.
	s, err = Slowdown(b, Placement{LocalGB: 60, CXLGB: 40})
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("slowdown = %v, want 1 when touched fits local", s)
	}
}

func TestSlowdownUnknownApp(t *testing.T) {
	if _, err := Slowdown(Behavior{App: "nope", AllocGB: 1, TouchedFrac: 0.5}, Placement{}); err == nil {
		t.Fatal("Slowdown accepted an unknown app")
	}
}

func TestPlaceValidation(t *testing.T) {
	p := NewPredictor()
	if _, err := p.Place(Behavior{App: "Moses", AllocGB: 0}); err == nil {
		t.Fatal("Place accepted a zero allocation")
	}
}

func TestObserveClamps(t *testing.T) {
	p := NewPredictor()
	p.Observe("Moses", -1)
	p.Observe("Moses", 2)
	h := p.SortedHistory("Moses")
	if h[0] != 0 || h[1] != 1 {
		t.Fatalf("observations not clamped: %v", h)
	}
}

func TestStudyValidation(t *testing.T) {
	if _, err := Study(10, 1); err == nil {
		t.Fatal("Study accepted a tiny population")
	}
}

func TestStudyDeterminism(t *testing.T) {
	a, err := Study(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Study(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed diverged")
	}
}
