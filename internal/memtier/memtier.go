// Package memtier models the memory-tiering mechanism that lets
// GreenSKU-CXL reuse old DDR4 without slowing VMs down (§III, following
// Pond): hardware counters identify applications that can run entirely
// from CXL memory; for the rest, a prediction model places only
// predicted-untouched memory on CXL, exposed as a zero-core NUMA node
// the VM leaves untouched.
//
// The paper's claims reproduced here: untouched memory averages almost
// half of a VM's allocation, and the prediction approach keeps 98% of
// applications under a 5% slowdown.
package memtier

import (
	"fmt"
	"sort"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/stats"
)

// Behavior is one VM's memory behaviour.
type Behavior struct {
	App     string
	AllocGB float64
	// TouchedFrac is the true maximum fraction of the allocation the
	// VM touches over its lifetime.
	TouchedFrac float64
}

// Placement is the tiering decision for one VM.
type Placement struct {
	LocalGB float64 // DDR5
	CXLGB   float64 // reused DDR4 behind CXL
	// EntirelyCXL marks VMs of CXL-friendly applications that run
	// fully from CXL memory.
	EntirelyCXL bool
}

// Predictor learns per-application touched-fraction distributions and
// provisions local memory at a conservative quantile, mirroring Pond's
// untouched-memory prediction.
type Predictor struct {
	// Quantile is the per-app touched-fraction percentile provisioned
	// locally (0-100). Higher is safer and reuses less memory.
	Quantile float64
	// Margin is extra local headroom as a fraction of the allocation.
	Margin float64
	// FallbackLocalFrac is used for apps with no history.
	FallbackLocalFrac float64

	history map[string][]float64
}

// NewPredictor returns a predictor at the given conservatism.
// fitted: quantile 97.5 with a 4% margin reproduces the paper's "98% of
// applications incur <5% slowdown" at the synthetic workload's
// touched-fraction spread.
func NewPredictor() *Predictor {
	return &Predictor{Quantile: 97.5, Margin: 0.04, FallbackLocalFrac: 0.95, history: map[string][]float64{}}
}

// Observe records a completed VM's true touched fraction.
func (p *Predictor) Observe(app string, touchedFrac float64) {
	if touchedFrac < 0 {
		touchedFrac = 0
	}
	if touchedFrac > 1 {
		touchedFrac = 1
	}
	p.history[app] = append(p.history[app], touchedFrac)
}

// HistoryLen reports how many observations the predictor has for an
// app.
func (p *Predictor) HistoryLen(app string) int { return len(p.history[app]) }

// Place decides the local/CXL split for a VM. CXL-friendly apps (per
// the hardware-counter screen) run entirely from CXL.
func (p *Predictor) Place(b Behavior) (Placement, error) {
	if b.AllocGB <= 0 {
		return Placement{}, fmt.Errorf("memtier: non-positive allocation")
	}
	a, err := apps.ByName(b.App)
	if err == nil && a.CXLFriendly() {
		return Placement{CXLGB: b.AllocGB, EntirelyCXL: true}, nil
	}
	frac := p.FallbackLocalFrac
	if h := p.history[b.App]; len(h) >= 20 {
		frac = stats.Percentile(h, p.Quantile) + p.Margin
	}
	if frac > 1 {
		frac = 1
	}
	local := b.AllocGB * frac
	return Placement{LocalGB: local, CXLGB: b.AllocGB - local}, nil
}

// Slowdown returns the VM's slowdown factor under a placement: touched
// pages that overflow local memory are served at CXL latency, weighted
// by the application's memory-latency sensitivity. Entirely-CXL
// placements of friendly apps incur no slowdown by construction (the
// hardware-counter screen selected them).
func Slowdown(b Behavior, pl Placement) (float64, error) {
	a, err := apps.ByName(b.App)
	if err != nil {
		return 0, err
	}
	if pl.EntirelyCXL {
		return 1, nil
	}
	touched := b.TouchedFrac * b.AllocGB
	if touched <= pl.LocalGB || touched == 0 {
		return 1, nil
	}
	overflow := (touched - pl.LocalGB) / touched
	// CXL doubles memory latency; the app's sensitivity scales the
	// penalty on the overflowing fraction of accesses.
	return 1 + a.MemLatSens*overflow, nil
}

// StudyResult summarises a tiering simulation.
type StudyResult struct {
	VMs int
	// UnderFivePct is the fraction of VMs with slowdown below 5%
	// (paper: 98%).
	UnderFivePct float64
	// MeanUntouched is the mean untouched fraction (paper: almost
	// half).
	MeanUntouched float64
	// CXLShare is the fraction of all allocated memory placed on CXL.
	CXLShare float64
	// EntirelyCXLShare is the fraction of memory belonging to
	// friendly apps running fully on CXL.
	EntirelyCXLShare float64
	// P99Slowdown is the 99th-percentile VM slowdown.
	P99Slowdown float64
}

// Study generates a synthetic VM population with per-app touched
// fractions, trains the predictor online, and measures the steady-state
// tiering quality over the second half of the population.
func Study(vms int, seed uint64) (StudyResult, error) {
	if vms < 100 {
		return StudyResult{}, fmt.Errorf("memtier: need at least 100 VMs for a study")
	}
	r := stats.NewRNG(seed)
	catalog := apps.All()
	weights := make([]float64, len(catalog))
	for i, a := range catalog {
		weights[i] = apps.CoreHourWeight(a)
	}
	pred := NewPredictor()

	var res StudyResult
	var slowdowns []float64
	var totalMem, cxlMem, friendlyMem, untouchedSum float64
	warmup := vms / 2
	for i := 0; i < vms; i++ {
		a := catalog[r.Pick(weights)]
		// Per-app touched-fraction distribution: app-specific mean
		// with VM-level spread, clamped to [0.05, 1].
		mean := appTouchMean(a)
		tf := clamp(r.Normal(mean, 0.12), 0.05, 1)
		b := Behavior{App: a.Name, AllocGB: float64(8 * (1 + r.Intn(16))), TouchedFrac: tf}
		pl, err := pred.Place(b)
		if err != nil {
			return res, err
		}
		s, err := Slowdown(b, pl)
		if err != nil {
			return res, err
		}
		pred.Observe(a.Name, tf)
		if i < warmup {
			continue
		}
		res.VMs++
		slowdowns = append(slowdowns, s)
		totalMem += b.AllocGB
		cxlMem += pl.CXLGB
		if pl.EntirelyCXL {
			friendlyMem += b.AllocGB
		}
		untouchedSum += 1 - tf
	}
	under := 0
	for _, s := range slowdowns {
		if s < 1.05 {
			under++
		}
	}
	res.UnderFivePct = float64(under) / float64(len(slowdowns))
	res.MeanUntouched = untouchedSum / float64(res.VMs)
	res.CXLShare = cxlMem / totalMem
	res.EntirelyCXLShare = friendlyMem / totalMem
	res.P99Slowdown = stats.Percentile(slowdowns, 99)
	return res, nil
}

// appTouchMean maps an application to its mean touched fraction.
// Memory-hungry stores touch most of their allocation; stateless
// proxies and build jobs touch little.
func appTouchMean(a apps.App) float64 {
	switch a.Class {
	case apps.BigData:
		return 0.62
	case apps.WebApp:
		return 0.50
	case apps.RTC:
		return 0.55
	case apps.MLInference:
		return 0.45
	case apps.WebProxy:
		return 0.30
	default: // DevOps
		return 0.35
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SortedHistory returns a copy of the predictor's observations for an
// app, ascending (primarily for inspection and tests).
func (p *Predictor) SortedHistory(app string) []float64 {
	h := append([]float64(nil), p.history[app]...)
	sort.Float64s(h)
	return h
}
