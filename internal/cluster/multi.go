package cluster

// Multi-SKU cluster sizing: extends the single-GreenSKU search to
// clusters deploying several GreenSKU types at once, the diversity
// question of §II's design goal D2 (every extra SKU type adds
// operational complexity — is the carbon worth it?).

import (
	"context"
	"fmt"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/trace"
)

// MultiSizer sizes a baseline pool plus N green pools.
type MultiSizer struct {
	Base   alloc.ServerClass
	Greens []alloc.ServerClass
	Policy alloc.Policy
	Decide alloc.MultiDecider
	// MaxServers caps each pool's search.
	MaxServers int
	// Shards > 1 replays each sizing probe through the pool-sharded
	// pipeline (alloc.MultiConfig.Shards). Results are bit-identical
	// to the sequential replay, so sharding never changes a size.
	Shards int
}

// MultiMix is a sized multi-SKU cluster.
type MultiMix struct {
	BaselineOnly int
	NBase        int
	NGreens      []int // aligned with Greens
}

func (s *MultiSizer) maxServers(tr trace.Trace) int {
	if s.MaxServers > 0 {
		return s.MaxServers
	}
	single := &Sizer{Base: s.Base}
	return single.maxServers(tr)
}

func (s *MultiSizer) hosts(ctx context.Context, tr trace.Trace, nBase int, nGreens []int) (bool, error) {
	total := nBase
	pools := make([]alloc.Pool, len(s.Greens))
	for i, g := range s.Greens {
		pools[i] = alloc.Pool{Class: g, N: nGreens[i]}
		total += nGreens[i]
	}
	if total == 0 {
		return len(tr.VMs) == 0, nil
	}
	res, err := alloc.SimulateMultiContext(ctx, tr, alloc.MultiConfig{
		Base:           alloc.Pool{Class: s.Base, N: nBase},
		Greens:         pools,
		Policy:         s.Policy,
		PreferNonEmpty: true,
		Shards:         s.Shards,
	}, s.Decide)
	if err != nil {
		return false, err
	}
	return res.Rejected == 0, nil
}

// Size right-sizes the multi-SKU cluster: minimal baseline count with
// all green pools abundant, then each green pool minimised in turn
// (later pools abundant while earlier ones are fixed). Pool order is
// the preference order the decider uses, so earlier pools absorb the
// workload they are preferred for.
func (s *MultiSizer) Size(tr trace.Trace) (MultiMix, error) {
	return s.SizeContext(context.Background(), tr)
}

// SizeContext is Size with cancellation.
func (s *MultiSizer) SizeContext(ctx context.Context, tr trace.Trace) (MultiMix, error) {
	var m MultiMix
	if len(s.Greens) == 0 {
		return m, fmt.Errorf("cluster: MultiSizer needs at least one green class")
	}
	if err := tr.Validate(); err != nil {
		return m, err
	}
	single := &Sizer{Base: s.Base, Policy: s.Policy, Decide: alloc.AdoptNone, MaxServers: s.MaxServers}
	n0, err := single.RightSizeBaselineContext(ctx, tr)
	if err != nil {
		return m, err
	}
	m.BaselineOnly = n0
	cap := s.maxServers(tr)
	abundant := make([]int, len(s.Greens))
	for i := range abundant {
		abundant[i] = cap
	}

	m.NBase, err = searchMin(n0, func(n int) (bool, error) {
		return s.hosts(ctx, tr, n, abundant)
	})
	if err != nil {
		return m, err
	}

	m.NGreens = make([]int, len(s.Greens))
	copy(m.NGreens, abundant)
	for i := range s.Greens {
		idx := i
		m.NGreens[idx], err = searchMin(cap, func(n int) (bool, error) {
			trial := make([]int, len(m.NGreens))
			copy(trial, m.NGreens)
			trial[idx] = n
			return s.hosts(ctx, tr, m.NBase, trial)
		})
		if err != nil {
			return m, err
		}
	}
	// The sequential minimisation can strand capacity: verify.
	ok, err := s.hosts(ctx, tr, m.NBase, m.NGreens)
	if err != nil {
		return m, err
	}
	if !ok {
		return m, fmt.Errorf("cluster: multi-SKU sizing failed verification")
	}
	return m, nil
}

// MultiSavings computes the multi-SKU cluster's carbon saving versus
// the all-baseline cluster.
func MultiSavings(m MultiMix, base SavingsInput, greens []SavingsInput) float64 {
	all := Emissions(m.BaselineOnly, base.Class, base.PerCore)
	mixed := Emissions(m.NBase, base.Class, base.PerCore)
	for i, g := range greens {
		mixed += Emissions(m.NGreens[i], g.Class, g.PerCore)
	}
	if all == 0 {
		return 0
	}
	return 1 - float64(mixed)/float64(all)
}

// TotalGreens sums the green pools.
func (m MultiMix) TotalGreens() int {
	n := 0
	for _, g := range m.NGreens {
		n += g
	}
	return n
}
