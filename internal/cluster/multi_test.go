package cluster

import (
	"context"
	"testing"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/trace"
)

func greenClassB() alloc.ServerClass {
	return alloc.ServerClass{Name: "green-b", Cores: 128, Memory: 1152, LocalMemory: 1152, Green: true}
}

func TestMultiSizeTwoGreens(t *testing.T) {
	tr := testTrace(t, 11)
	s := &MultiSizer{
		Base:   baseClass(),
		Greens: []alloc.ServerClass{greenClass(), greenClassB()},
		Policy: alloc.BestFit,
		// Even VM IDs may use pool 0, odd IDs pool 1: forces both
		// pools into service.
		Decide: func(vm trace.VM) alloc.MultiDecision {
			if vm.ID%2 == 0 {
				return alloc.MultiDecision{Scales: []float64{1, 0}}
			}
			return alloc.MultiDecision{Scales: []float64{0, 1}}
		},
	}
	m, err := s.Size(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.NGreens[0] == 0 || m.NGreens[1] == 0 {
		t.Fatalf("both pools should be populated: %+v", m.NGreens)
	}
	if m.NBase >= m.BaselineOnly {
		t.Fatalf("mixed cluster keeps %d baselines, want fewer than %d", m.NBase, m.BaselineOnly)
	}
	ok, err := s.hosts(context.Background(), tr, m.NBase, m.NGreens)
	if err != nil || !ok {
		t.Fatalf("sized multi cluster rejects VMs: %v", err)
	}
}

func TestMultiSizeMatchesSingleWithOneGreen(t *testing.T) {
	tr := testTrace(t, 12)
	single := &Sizer{Base: baseClass(), Green: greenClass(), Policy: alloc.BestFit, Decide: alloc.AdoptAll}
	sm, err := single.MixedSize(tr)
	if err != nil {
		t.Fatal(err)
	}
	multi := &MultiSizer{
		Base:   baseClass(),
		Greens: []alloc.ServerClass{greenClass()},
		Policy: alloc.BestFit,
		Decide: func(trace.VM) alloc.MultiDecision {
			return alloc.MultiDecision{Scales: []float64{1}}
		},
	}
	mm, err := multi.Size(tr)
	if err != nil {
		t.Fatal(err)
	}
	if mm.BaselineOnly != sm.BaselineOnly {
		t.Fatalf("baseline-only sizes diverge: %d vs %d", mm.BaselineOnly, sm.BaselineOnly)
	}
	if mm.NBase != sm.NBase || mm.NGreens[0] != sm.NGreen {
		t.Fatalf("multi (%d, %v) diverges from single (%d, %d)",
			mm.NBase, mm.NGreens, sm.NBase, sm.NGreen)
	}
}

func TestMultiSavings(t *testing.T) {
	m := MultiMix{BaselineOnly: 10, NBase: 2, NGreens: []int{3, 2}}
	base := SavingsInput{Class: baseClass(), PerCore: carbon.PerCore{Operational: 23, Embodied: 23}}
	greens := []SavingsInput{
		{Class: greenClass(), PerCore: carbon.PerCore{Operational: 19, Embodied: 14}},
		{Class: greenClassB(), PerCore: carbon.PerCore{Operational: 20, Embodied: 18}},
	}
	// all: 10*80*46 = 36800; mixed: 2*80*46 + 3*128*33 + 2*128*38 = 29760.
	want := 1 - 29760.0/36800
	if got := MultiSavings(m, base, greens); got != want {
		t.Fatalf("MultiSavings = %v, want %v", got, want)
	}
	if m.TotalGreens() != 5 {
		t.Fatalf("TotalGreens = %d, want 5", m.TotalGreens())
	}
}

func TestMultiSizeValidation(t *testing.T) {
	s := &MultiSizer{Base: baseClass(), Policy: alloc.BestFit}
	if _, err := s.Size(testTrace(t, 13)); err == nil {
		t.Fatal("accepted a sizer without green classes")
	}
}
