package cluster

import (
	"testing"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/audit"
)

func TestAuditCleanMixedSize(t *testing.T) {
	rec := audit.NewRecorder()
	s := &Sizer{Base: baseClass(), Green: greenClass(), Policy: alloc.BestFit,
		Decide: alloc.AdoptAll, Audit: rec}
	if _, err := s.MixedSize(testTrace(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("clean sizing recorded violations: %v\n%v", err, rec.Violations())
	}
}

func TestAuditMixCatchesBadResults(t *testing.T) {
	tr := testTrace(t, 4)
	rec := audit.NewRecorder()
	s := &Sizer{Base: baseClass(), Green: greenClass(), Audit: rec}

	s.auditMix(tr, Mix{BaselineOnly: 3, NBase: 5, NGreen: 0})
	if rec.Counts()["cluster/baseline-shrinks"] == 0 {
		t.Errorf("baseline growth not caught: %v", rec.Counts())
	}

	rec.Reset()
	s.auditMix(tr, Mix{BaselineOnly: 10, NBase: -1, NGreen: 2})
	if rec.Counts()["cluster/negative-size"] == 0 {
		t.Errorf("negative count not caught: %v", rec.Counts())
	}

	// An empty cluster cannot cover the trace's peak demand.
	rec.Reset()
	s.auditMix(tr, Mix{BaselineOnly: 10, NBase: 0, NGreen: 0})
	if rec.Counts()["cluster/capacity-below-peak"] == 0 {
		t.Errorf("under-capacity mix not caught: %v", rec.Counts())
	}
}
