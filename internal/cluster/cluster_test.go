package cluster

import (
	"context"
	"math"
	"testing"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/trace"
)

func baseClass() alloc.ServerClass {
	return alloc.ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768}
}

func greenClass() alloc.ServerClass {
	return alloc.ServerClass{Name: "green", Cores: 128, Memory: 1024, LocalMemory: 768, Green: true}
}

func testTrace(t *testing.T, seed uint64) trace.Trace {
	t.Helper()
	p := trace.DefaultParams("cluster-test", seed)
	p.HorizonHours = 24 * 4
	p.ArrivalsPerHour = 10
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRightSizeBaselineHosts(t *testing.T) {
	tr := testTrace(t, 1)
	s := &Sizer{Base: baseClass(), Policy: alloc.BestFit, Decide: alloc.AdoptNone}
	n, err := s.RightSizeBaseline(tr)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("right-sized cluster is empty")
	}
	// n hosts the trace; n-1 must not (minimality).
	ok, err := s.hosts(context.Background(), tr, n, 0)
	if err != nil || !ok {
		t.Fatalf("right-sized cluster rejects VMs: %v", err)
	}
	if n > 1 {
		ok, err = s.hosts(context.Background(), tr, n-1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("cluster of %d already hosts the trace; %d is not minimal", n-1, n)
		}
	}
	// Sanity: the size is near the fluid bound.
	st := trace.Summarise(tr)
	lower := st.PeakCoreDmd / baseClass().Cores
	if n < lower || n > 3*lower+8 {
		t.Fatalf("right size %d implausible vs fluid bound %d", n, lower)
	}
}

func TestMixedSizeReplacesBaselines(t *testing.T) {
	tr := testTrace(t, 2)
	s := &Sizer{Base: baseClass(), Green: greenClass(), Policy: alloc.BestFit, Decide: alloc.AdoptAll}
	m, err := s.MixedSize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.NGreen == 0 {
		t.Fatal("no GreenSKUs in the mixed cluster despite universal adoption")
	}
	if m.NBase >= m.BaselineOnly {
		t.Fatalf("mixed cluster keeps %d baselines, not fewer than %d", m.NBase, m.BaselineOnly)
	}
	// Full-node VMs exist, so some baseline servers must remain.
	if m.NBase == 0 {
		t.Fatal("full-node VMs require baseline servers")
	}
	// Verify the mix actually hosts the trace.
	ok, err := s.hosts(context.Background(), tr, m.NBase, m.NGreen)
	if err != nil || !ok {
		t.Fatalf("mixed cluster rejects VMs: %v", err)
	}
}

func TestMixedSizeNoAdoption(t *testing.T) {
	// When nothing adopts, green servers are useless: the mixed
	// cluster degenerates to the baseline-only cluster.
	tr := testTrace(t, 3)
	s := &Sizer{Base: baseClass(), Green: greenClass(), Policy: alloc.BestFit, Decide: alloc.AdoptNone}
	m, err := s.MixedSize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.NBase != m.BaselineOnly {
		t.Fatalf("no-adoption mix keeps %d baselines, want %d", m.NBase, m.BaselineOnly)
	}
	if m.NGreen != 0 {
		t.Fatalf("no-adoption mix has %d green servers, want 0", m.NGreen)
	}
}

func TestSavingsPositiveWhenGreenCheaper(t *testing.T) {
	m := Mix{BaselineOnly: 10, NBase: 2, NGreen: 5}
	base := SavingsInput{Class: baseClass(), PerCore: carbon.PerCore{Operational: 23, Embodied: 23}}
	green := SavingsInput{Class: greenClass(), PerCore: carbon.PerCore{Operational: 19, Embodied: 14}}
	s := Savings(m, base, green)
	// all-baseline: 10*80*46 = 36800; mixed: 2*80*46 + 5*128*33 = 28480.
	want := 1 - 28480.0/36800
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("savings = %v, want %v", s, want)
	}
}

func TestSavingsZeroCluster(t *testing.T) {
	if got := Savings(Mix{}, SavingsInput{Class: baseClass()}, SavingsInput{Class: greenClass()}); got != 0 {
		t.Fatalf("savings of empty cluster = %v, want 0", got)
	}
}

func TestEmissions(t *testing.T) {
	pc := carbon.PerCore{Operational: 20, Embodied: 10}
	if got := Emissions(2, baseClass(), pc); got != 2*80*30 {
		t.Fatalf("Emissions = %v, want 4800", got)
	}
}

func TestComparePacking(t *testing.T) {
	tr := testTrace(t, 4)
	s := &Sizer{Base: baseClass(), Green: greenClass(), Policy: alloc.BestFit, Decide: alloc.AdoptAll}
	pc, err := s.ComparePacking(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Baseline.CorePacking <= 0 || pc.Baseline.CorePacking > 1 {
		t.Fatalf("baseline core packing out of range: %v", pc.Baseline.CorePacking)
	}
	if pc.Green.CorePacking <= 0 || pc.Green.CorePacking > 1 {
		t.Fatalf("green core packing out of range: %v", pc.Green.CorePacking)
	}
	if pc.Green.MaxMemUtil <= 0 || pc.Green.MaxMemUtil > 1 {
		t.Fatalf("green memory utilisation out of range: %v", pc.Green.MaxMemUtil)
	}
}

func TestSearchMinUnhostable(t *testing.T) {
	tr := trace.Trace{Name: "huge", Horizon: 10, VMs: []trace.VM{
		// Wider than a baseline server: can never be placed.
		{ID: 0, Arrive: 1, Depart: 9, Cores: 200, Memory: 100, Gen: 3, MaxMemFrac: 0.5},
	}}
	s := &Sizer{Base: baseClass(), Policy: alloc.BestFit, Decide: alloc.AdoptNone, MaxServers: 10}
	if _, err := s.RightSizeBaseline(tr); err == nil {
		t.Fatal("right-sizing accepted an unhostable trace")
	}
}

func TestInvalidTrace(t *testing.T) {
	bad := trace.Trace{VMs: []trace.VM{{Arrive: 2, Depart: 1, Cores: 1, Memory: 1, Gen: 1}}}
	s := &Sizer{Base: baseClass(), Policy: alloc.BestFit}
	if _, err := s.RightSizeBaseline(bad); err == nil {
		t.Fatal("right-sizing accepted an invalid trace")
	}
}
