package cluster

import (
	"os"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// TestMain runs the package under a process-default audit.Recorder, so
// every sizing search any test performs doubles as an invariant sweep.
func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }
