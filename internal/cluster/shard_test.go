package cluster

// Shard-identity tests for the sizing layer: routing replays through
// the pool-sharded pipeline (Sizer.Shards / MultiSizer.Shards) must
// leave every sizing and packing answer exactly unchanged.

import (
	"testing"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/trace"
)

func TestSizerShardedMatchesUnsharded(t *testing.T) {
	tr := testTrace(t, 31)
	plain := &Sizer{Base: baseClass(), Green: greenClass(), Policy: alloc.BestFit, Decide: alloc.AdoptAll}
	sharded := &Sizer{Base: baseClass(), Green: greenClass(), Policy: alloc.BestFit, Decide: alloc.AdoptAll, Shards: 2}

	pp, err := plain.ComparePacking(tr)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sharded.ComparePacking(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pp != sp {
		t.Fatalf("sharded packing comparison differs:\nplain   %+v\nsharded %+v", pp, sp)
	}
}

func TestMultiSizerShardedMatchesUnsharded(t *testing.T) {
	tr := testTrace(t, 32)
	decide := func(vm trace.VM) alloc.MultiDecision {
		if vm.ID%2 == 0 {
			return alloc.MultiDecision{Scales: []float64{1, 0}}
		}
		return alloc.MultiDecision{Scales: []float64{0, 1.2}}
	}
	mk := func(shards int) *MultiSizer {
		return &MultiSizer{
			Base:   baseClass(),
			Greens: []alloc.ServerClass{greenClass(), greenClassB()},
			Policy: alloc.BestFit,
			Decide: decide,
			Shards: shards,
		}
	}
	pm, err := mk(0).Size(tr)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := mk(3).Size(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pm.BaselineOnly != sm.BaselineOnly || pm.NBase != sm.NBase {
		t.Fatalf("sharded multi sizing differs: %+v vs %+v", pm, sm)
	}
	for i := range pm.NGreens {
		if pm.NGreens[i] != sm.NGreens[i] {
			t.Fatalf("sharded multi sizing differs in pool %d: %+v vs %+v", i, pm, sm)
		}
	}
}
