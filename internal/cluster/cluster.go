// Package cluster implements GSF's cluster-sizing component (§IV-D,
// §V): it right-sizes a baseline-only cluster for a VM trace, then
// finds the smallest mixed cluster of GreenSKUs plus baseline SKUs that
// still hosts the trace without rejecting any VM, and compares the two
// clusters' lifetime carbon.
package cluster

import (
	"context"
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// Sizer runs right-sizing searches for one workload and SKU pair.
type Sizer struct {
	Base   alloc.ServerClass
	Green  alloc.ServerClass
	Policy alloc.Policy
	// Decide is the adoption component's per-VM directive used when
	// GreenSKUs are present.
	Decide alloc.Decider
	// MaxServers caps the search (guards against unhostable traces).
	MaxServers int
	// Audit receives invariant violations from the sizing search and is
	// forwarded to every allocation simulation it runs. Nil falls back
	// to the process default (audit.SetDefault).
	Audit audit.Checker
	// Shards > 1 replays simulations through the pool-sharded
	// multi-pool pipeline (alloc.MultiConfig.Shards) with the green
	// class as its single green pool. The one-pool multi replay is
	// bit-identical to the single-pool simulator (the alloc
	// differential suite proves it), so sharding never changes a
	// sizing or packing answer. The sharded path reports violations to
	// the process-default audit checker, not to Audit.
	Shards int
}

// simulate replays the trace against nBase + nGreen servers, routing
// through the sharded multi-pool pipeline when Shards asks for it.
func (s *Sizer) simulate(ctx context.Context, tr trace.Trace, nBase, nGreen int, decide alloc.Decider) (alloc.Result, error) {
	if s.Shards > 1 {
		if decide == nil {
			decide = alloc.AdoptNone
		}
		mres, err := alloc.SimulateMultiContext(ctx, tr, alloc.MultiConfig{
			Base:           alloc.Pool{Class: s.Base, N: nBase},
			Greens:         []alloc.Pool{{Class: s.Green, N: nGreen}},
			Policy:         s.Policy,
			PreferNonEmpty: true,
			Shards:         s.Shards,
		}, func(vm trace.VM) alloc.MultiDecision {
			d := decide(vm)
			scale := 0.0
			if d.Adopt {
				scale = d.Scale
			}
			return alloc.MultiDecision{Scales: []float64{scale}}
		})
		if err != nil {
			return alloc.Result{}, err
		}
		return alloc.Result{
			Placed:    mres.Placed,
			Rejected:  mres.Rejected,
			Base:      mres.Base,
			Green:     mres.Green[0],
			Snapshots: mres.Snapshots,
		}, nil
	}
	return alloc.SimulateContext(ctx, tr, alloc.Config{
		Base: s.Base, NBase: nBase,
		Green: s.Green, NGreen: nGreen,
		Policy: s.Policy, PreferNonEmpty: true,
		Audit: s.Audit,
	}, decide)
}

func (s *Sizer) maxServers(tr trace.Trace) int {
	if s.MaxServers > 0 {
		return s.MaxServers
	}
	st := trace.Summarise(tr)
	perCores := int(math.Ceil(float64(st.PeakCoreDmd)/float64(s.Base.Cores))) + st.FullNodeVMs
	perMem := int(math.Ceil(float64(st.PeakMemoryDmd) / float64(s.Base.Memory)))
	n := perCores
	if perMem > n {
		n = perMem
	}
	// Fragmentation means the right size can exceed the fluid bound;
	// 3x plus slack is a safe ceiling.
	return 3*n + 8
}

func (s *Sizer) hosts(ctx context.Context, tr trace.Trace, nBase, nGreen int) (bool, error) {
	if nBase+nGreen == 0 {
		return len(tr.VMs) == 0, nil
	}
	res, err := s.simulate(ctx, tr, nBase, nGreen, s.Decide)
	if err != nil {
		return false, err
	}
	return res.Rejected == 0, nil
}

// searchMin finds the smallest n in [0, hi] for which ok(n) holds,
// assuming ok is (approximately) monotone; it verifies the result and
// walks upward if fragmentation breaks monotonicity at the boundary.
func searchMin(hi int, ok func(int) (bool, error)) (int, error) {
	if fits, err := ok(hi); err != nil {
		return 0, err
	} else if !fits {
		return 0, fmt.Errorf("cluster: workload does not fit within %d servers", hi)
	}
	lo := 0
	for lo < hi {
		mid := (lo + hi) / 2
		fits, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if fits {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// RightSizeBaseline returns the minimum number of baseline servers that
// host the trace with no rejections (the paper's first sizing step).
func (s *Sizer) RightSizeBaseline(tr trace.Trace) (int, error) {
	return s.RightSizeBaselineContext(context.Background(), tr)
}

// RightSizeBaselineContext is RightSizeBaseline with cancellation.
func (s *Sizer) RightSizeBaselineContext(ctx context.Context, tr trace.Trace) (int, error) {
	if err := tr.Validate(); err != nil {
		return 0, err
	}
	return searchMin(s.maxServers(tr), func(n int) (bool, error) {
		return s.hosts(ctx, tr, n, 0)
	})
}

// Mix is a sized mixed cluster.
type Mix struct {
	BaselineOnly int // right-sized all-baseline cluster
	NBase        int // baseline servers kept in the mixed cluster
	NGreen       int // GreenSKU servers in the mixed cluster
}

// MixedSize performs the paper's incremental-replacement search: after
// right-sizing the baseline-only cluster, it finds the fewest baseline
// servers that must remain (hosting non-adopting and full-node VMs) and
// then the fewest GreenSKUs that, together with them, host everything.
func (s *Sizer) MixedSize(tr trace.Trace) (Mix, error) {
	return s.MixedSizeContext(context.Background(), tr)
}

// MixedSizeContext is MixedSize with cancellation.
func (s *Sizer) MixedSizeContext(ctx context.Context, tr trace.Trace) (Mix, error) {
	var m Mix
	n0, err := s.RightSizeBaselineContext(ctx, tr)
	if err != nil {
		return m, err
	}
	m.BaselineOnly = n0
	if s.Green.Cores == 0 {
		m.NBase = n0
		return m, nil
	}
	// Plenty of green capacity while minimising baseline count.
	greenCap := s.maxServers(tr)
	m.NBase, err = searchMin(n0, func(n int) (bool, error) {
		return s.hosts(ctx, tr, n, greenCap)
	})
	if err != nil {
		return m, err
	}
	m.NGreen, err = searchMin(greenCap, func(n int) (bool, error) {
		return s.hosts(ctx, tr, m.NBase, n)
	})
	if err != nil {
		return m, err
	}
	s.auditMix(tr, m)
	return m, nil
}

// auditMix verifies a sizing result: counts are non-negative, the mixed
// cluster never keeps more baseline servers than the all-baseline
// right-sizing, and (because it hosts the trace with zero rejections,
// and GreenSKU placement only inflates requests) its core and memory
// capacity cover the trace's peak concurrent demand.
func (s *Sizer) auditMix(tr trace.Trace, m Mix) {
	chk := audit.Resolve(s.Audit)
	if chk == nil {
		return
	}
	if m.BaselineOnly < 0 || m.NBase < 0 || m.NGreen < 0 {
		audit.Failf(chk, "cluster", "negative-size", "mix %+v has a negative count", m)
	}
	if m.NBase > m.BaselineOnly {
		audit.Failf(chk, "cluster", "baseline-shrinks",
			"mixed cluster keeps %d baseline servers, more than the %d right-sized", m.NBase, m.BaselineOnly)
	}
	// A placed VM consumes at least its requested resources (GreenSKU
	// placement scales requests up, never down), so a rejection-free
	// cluster's capacity bounds the requested peak — except for
	// full-node VMs requesting more than one baseline server, which
	// consume only the server they pin.
	for _, v := range tr.VMs {
		if v.FullNode && (v.Cores > s.Base.Cores || float64(v.Memory) > float64(s.Base.Memory)) {
			return
		}
	}
	st := trace.Summarise(tr)
	cores := m.NBase*s.Base.Cores + m.NGreen*s.Green.Cores
	if cores < st.PeakCoreDmd {
		audit.Failf(chk, "cluster", "capacity-below-peak",
			"trace %s: mixed capacity %d cores below peak demand %d", tr.Name, cores, st.PeakCoreDmd)
	}
	mem := float64(m.NBase)*float64(s.Base.Memory) + float64(m.NGreen)*float64(s.Green.Memory)
	if mem < float64(st.PeakMemoryDmd) {
		audit.Failf(chk, "cluster", "capacity-below-peak",
			"trace %s: mixed capacity %g GB below peak demand %g", tr.Name, mem, float64(st.PeakMemoryDmd))
	}
}

// Emissions computes a cluster's lifetime carbon from per-core
// emissions (rack-amortised) at a given carbon intensity.
func Emissions(n int, class alloc.ServerClass, pc carbon.PerCore) units.KgCO2e {
	return units.KgCO2e(float64(n) * float64(class.Cores) * float64(pc.Total()))
}

// SavingsInput bundles what the savings calculation needs per SKU.
type SavingsInput struct {
	Class   alloc.ServerClass
	PerCore carbon.PerCore
}

// Savings returns the relative carbon reduction of the mixed cluster
// versus the right-sized all-baseline cluster (Fig. 11's y-axis).
func Savings(m Mix, base, green SavingsInput) float64 {
	all := Emissions(m.BaselineOnly, base.Class, base.PerCore)
	mixed := Emissions(m.NBase, base.Class, base.PerCore) + Emissions(m.NGreen, green.Class, green.PerCore)
	if all == 0 {
		return 0
	}
	return 1 - float64(mixed)/float64(all)
}

// PackingComparison holds the Fig. 9/10 measurements for one trace:
// packing densities and memory utilisation for the right-sized
// all-baseline cluster and for the GreenSKUs of the mixed cluster.
type PackingComparison struct {
	Trace string
	Mix   Mix
	// Baseline stats come from the all-baseline right-sized cluster.
	Baseline alloc.ClassStats
	// Green stats come from the GreenSKU servers of the mixed cluster.
	Green alloc.ClassStats
}

// ComparePacking right-sizes both cluster shapes for the trace and
// returns their packing measurements.
func (s *Sizer) ComparePacking(tr trace.Trace) (PackingComparison, error) {
	return s.ComparePackingContext(context.Background(), tr)
}

// ComparePackingContext is ComparePacking with cancellation.
func (s *Sizer) ComparePackingContext(ctx context.Context, tr trace.Trace) (PackingComparison, error) {
	var pc PackingComparison
	pc.Trace = tr.Name
	m, err := s.MixedSizeContext(ctx, tr)
	if err != nil {
		return pc, err
	}
	pc.Mix = m
	baseRes, err := s.simulate(ctx, tr, m.BaselineOnly, 0, alloc.AdoptNone)
	if err != nil {
		return pc, err
	}
	pc.Baseline = baseRes.Base
	mixRes, err := s.simulate(ctx, tr, m.NBase, m.NGreen, s.Decide)
	if err != nil {
		return pc, err
	}
	pc.Green = mixRes.Green
	return pc, nil
}
