package harvest

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
)

func TestDemandForGreenSKUs(t *testing.T) {
	// GreenSKU-CXL reuses 8 DIMMs and no SSDs; -Full adds 12 SSDs.
	d := DemandFor(hw.GreenSKUCXL())
	if d.DIMMs != 8 || d.SSDs != 0 {
		t.Fatalf("GreenSKU-CXL demand = %+v, want 8 DIMMs / 0 SSDs", d)
	}
	d = DemandFor(hw.GreenSKUFull())
	if d.DIMMs != 8 || d.SSDs != 12 {
		t.Fatalf("GreenSKU-Full demand = %+v, want 8 DIMMs / 12 SSDs", d)
	}
	d = DemandFor(hw.BaselineGen3())
	if d.DIMMs != 0 || d.SSDs != 0 {
		t.Fatalf("baseline demand = %+v, want none", d)
	}
}

func TestSSDsBottleneckFullSKU(t *testing.T) {
	// A donor yields 12 DIMMs but only 4 SSDs; GreenSKU-Full wants 8
	// and 12: SSD supply binds.
	_, bottleneck, err := SKUsFrom(100, Donor2018(), DefaultYield(), DemandFor(hw.GreenSKUFull()))
	if err != nil {
		t.Fatal(err)
	}
	if bottleneck != "ssd" {
		t.Fatalf("bottleneck = %s, want ssd", bottleneck)
	}
	// For the CXL SKU (no SSD reuse) DIMMs bind instead.
	_, bottleneck, err = SKUsFrom(100, Donor2018(), DefaultYield(), DemandFor(hw.GreenSKUCXL()))
	if err != nil {
		t.Fatal(err)
	}
	if bottleneck != "dimm" {
		t.Fatalf("bottleneck = %s, want dimm", bottleneck)
	}
}

func TestDonorsForRoundTrip(t *testing.T) {
	spec, y := Donor2018(), DefaultYield()
	for _, sku := range []hw.SKU{hw.GreenSKUCXL(), hw.GreenSKUFull()} {
		d := DemandFor(sku)
		for _, fleet := range []int{1, 16, 100, 1000} {
			donors, err := DonorsFor(fleet, spec, y, d)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := SKUsFrom(donors, spec, y, d)
			if err != nil {
				t.Fatal(err)
			}
			if got < fleet {
				t.Fatalf("%s fleet %d: %d donors supply only %d SKUs", sku.Name, fleet, donors, got)
			}
			if donors > 1 {
				fewer, _, err := SKUsFrom(donors-1, spec, y, d)
				if err != nil {
					t.Fatal(err)
				}
				if fewer >= fleet {
					t.Fatalf("%s fleet %d: %d donors not minimal (%d suffice)", sku.Name, fleet, donors, donors-1)
				}
			}
		}
	}
}

func TestPlanFleet(t *testing.T) {
	plan, err := PlanFleet(hw.GreenSKUFull(), 1000, Donor2018(), DefaultYield(), carbondata.OpenSource())
	if err != nil {
		t.Fatal(err)
	}
	// 1000 SKUs need 12000 reused SSDs; a donor yields
	// floor(4*0.88)=3.52 SSDs -> ~3410 donors.
	if plan.Donors < 3000 || plan.Donors > 3600 {
		t.Fatalf("donors = %d, want ~3410", plan.Donors)
	}
	if plan.Bottleneck != "ssd" {
		t.Fatalf("bottleneck = %s, want ssd", plan.Bottleneck)
	}
	if plan.SpareDIMMs <= 0 {
		t.Fatalf("spare DIMMs = %d, want surplus (DIMMs are not the bottleneck)", plan.SpareDIMMs)
	}
	// Avoided embodied: 256 GB * 1.65 + 12 TB * 17.3 = 630 kg per SKU.
	want := 1000 * (256*1.65 + 12*17.3)
	if math.Abs(float64(plan.AvoidedEmbodied)-want) > 1 {
		t.Fatalf("avoided embodied = %v, want %v", plan.AvoidedEmbodied, want)
	}
}

func TestAvoidedEmbodiedZeroForNewSKU(t *testing.T) {
	if got := AvoidedEmbodied(hw.GreenSKUEfficient(), carbondata.OpenSource()); got != 0 {
		t.Fatalf("all-new SKU avoided embodied = %v, want 0", got)
	}
}

func TestValidation(t *testing.T) {
	spec, d := Donor2018(), DemandFor(hw.GreenSKUFull())
	if _, _, err := SKUsFrom(10, spec, Yield{DIMM: 2, SSD: 0.5}, d); err == nil {
		t.Error("accepted yield > 1")
	}
	if _, _, err := SKUsFrom(-1, spec, DefaultYield(), d); err == nil {
		t.Error("accepted negative donors")
	}
	if _, _, err := SKUsFrom(10, spec, DefaultYield(), Demand{}); err == nil {
		t.Error("accepted a SKU with no reuse")
	}
	if _, err := DonorsFor(0, spec, DefaultYield(), d); err == nil {
		t.Error("accepted zero fleet")
	}
	noSSD := spec
	noSSD.SSDs = 0
	if _, err := DonorsFor(10, noSSD, DefaultYield(), d); err == nil {
		t.Error("accepted a donor that cannot supply demanded SSDs")
	}
}

func TestPropertySupplyMonotone(t *testing.T) {
	spec, y := Donor2018(), DefaultYield()
	d := DemandFor(hw.GreenSKUFull())
	f := func(a, b uint16) bool {
		x, yy := int(a%2000), int(b%2000)
		if x > yy {
			x, yy = yy, x
		}
		sx, _, err1 := SKUsFrom(x, spec, y, d)
		sy, _, err2 := SKUsFrom(yy, spec, y, d)
		return err1 == nil && err2 == nil && sx <= sy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
