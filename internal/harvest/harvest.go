// Package harvest plans the supply side of component reuse: GreenSKUs
// consume second-life DDR4 DIMMs and m.2 SSDs, which must be harvested
// from decommissioned donor servers (§III: "we decommission a rack of
// Azure servers that was deployed in 2018; these servers have two
// sockets, each with six low-capacity and six high-capacity DDR4 DIMMs;
// we reuse the high-capacity DIMMs").
//
// The planner answers the deployment questions the paper's scale-out
// implies: how many donors a GreenSKU fleet needs, which harvested
// component bottlenecks production, and how much embodied carbon the
// harvest avoids versus buying new parts.
package harvest

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// DonorSpec describes one decommissioned server model's harvestable
// contents.
type DonorSpec struct {
	Name string
	// HighCapDIMMs are the reusable high-capacity DDR4 DIMMs (the
	// low-capacity ones are not worth a CXL slot).
	HighCapDIMMs int
	DIMMGB       units.GB
	// SSDs are the m.2 drives per donor.
	SSDs  int
	SSDTB float64
}

// Donor2018 is the paper's donor: a 2018 two-socket server with six
// high-capacity 32 GB DIMMs per socket, plus its boot/cache m.2 drives.
func Donor2018() DonorSpec {
	return DonorSpec{Name: "2018-2S", HighCapDIMMs: 12, DIMMGB: 32, SSDs: 4, SSDTB: 1}
}

// Yield is the requalification pass rate per component class: parts
// failing health screens (erase cycles, correctable-error history) are
// scrapped rather than reused.
type Yield struct {
	DIMM float64
	SSD  float64
}

// DefaultYield reflects the paper's reliability findings: DIMMs show no
// aging (§II, Fig. 2), SSDs are screened for remaining erase cycles.
func DefaultYield() Yield { return Yield{DIMM: 0.97, SSD: 0.88} }

// Demand is one GreenSKU's appetite for harvested parts.
type Demand struct {
	DIMMs int
	SSDs  int
}

// DemandFor counts the reused component groups of a SKU.
func DemandFor(sku hw.SKU) Demand {
	var d Demand
	for _, g := range sku.DIMMs {
		if g.Reused {
			d.DIMMs += g.Count
		}
	}
	for _, g := range sku.SSDs {
		if g.Reused {
			d.SSDs += g.Count
		}
	}
	return d
}

func (y Yield) validate() error {
	if y.DIMM < 0 || y.DIMM > 1 || y.SSD < 0 || y.SSD > 1 {
		return fmt.Errorf("harvest: yields out of [0,1]: %+v", y)
	}
	return nil
}

// SKUsFrom returns how many GreenSKUs a donor pool can supply, and
// which component runs out first.
func SKUsFrom(donors int, spec DonorSpec, y Yield, d Demand) (skus int, bottleneck string, err error) {
	if err := y.validate(); err != nil {
		return 0, "", err
	}
	if donors < 0 {
		return 0, "", fmt.Errorf("harvest: negative donor count")
	}
	if d.DIMMs == 0 && d.SSDs == 0 {
		return 0, "", fmt.Errorf("harvest: SKU reuses no components")
	}
	dimmSupply := math.Floor(float64(donors) * float64(spec.HighCapDIMMs) * y.DIMM)
	ssdSupply := math.Floor(float64(donors) * float64(spec.SSDs) * y.SSD)
	best := math.Inf(1)
	bottleneck = "none"
	if d.DIMMs > 0 {
		byDIMM := math.Floor(dimmSupply / float64(d.DIMMs))
		if byDIMM < best {
			best = byDIMM
			bottleneck = "dimm"
		}
	}
	if d.SSDs > 0 {
		bySSD := math.Floor(ssdSupply / float64(d.SSDs))
		if bySSD < best {
			best = bySSD
			bottleneck = "ssd"
		}
	}
	return int(best), bottleneck, nil
}

// DonorsFor returns the smallest donor pool that supplies n GreenSKUs.
func DonorsFor(n int, spec DonorSpec, y Yield, d Demand) (int, error) {
	if err := y.validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("harvest: SKU count must be positive")
	}
	if d.DIMMs == 0 && d.SSDs == 0 {
		return 0, fmt.Errorf("harvest: SKU reuses no components")
	}
	need := 0.0
	if d.DIMMs > 0 {
		if spec.HighCapDIMMs == 0 || y.DIMM == 0 {
			return 0, fmt.Errorf("harvest: donor %s supplies no usable DIMMs", spec.Name)
		}
		need = math.Max(need, float64(n*d.DIMMs)/(float64(spec.HighCapDIMMs)*y.DIMM))
	}
	if d.SSDs > 0 {
		if spec.SSDs == 0 || y.SSD == 0 {
			return 0, fmt.Errorf("harvest: donor %s supplies no usable SSDs", spec.Name)
		}
		need = math.Max(need, float64(n*d.SSDs)/(float64(spec.SSDs)*y.SSD))
	}
	donors := int(math.Ceil(need))
	// Flooring in SKUsFrom can leave the estimate one donor short.
	for {
		got, _, err := SKUsFrom(donors, spec, y, d)
		if err != nil {
			return 0, err
		}
		if got >= n {
			return donors, nil
		}
		donors++
	}
}

// AvoidedEmbodied returns the embodied emissions one GreenSKU's reuse
// avoids versus buying new parts, under the dataset's new-component
// values.
func AvoidedEmbodied(sku hw.SKU, data carbondata.Dataset) units.KgCO2e {
	var total float64
	for _, g := range sku.DIMMs {
		if g.Reused {
			total += float64(g.TotalGB()) * float64(data.DRAMPerGB.Embodied)
		}
	}
	for _, g := range sku.SSDs {
		if g.Reused {
			total += g.TotalTB() * float64(data.SSDPerTB.Embodied)
		}
	}
	return units.KgCO2e(total)
}

// Plan summarises a harvest campaign for a GreenSKU fleet.
type Plan struct {
	SKUs            int
	Donors          int
	Bottleneck      string
	SpareDIMMs      int
	SpareSSDs       int
	AvoidedEmbodied units.KgCO2e // across the fleet
}

// PlanFleet sizes the donor pool for a fleet of the given GreenSKU.
func PlanFleet(sku hw.SKU, fleet int, spec DonorSpec, y Yield, data carbondata.Dataset) (Plan, error) {
	d := DemandFor(sku)
	donors, err := DonorsFor(fleet, spec, y, d)
	if err != nil {
		return Plan{}, err
	}
	_, bottleneck, err := SKUsFrom(donors, spec, y, d)
	if err != nil {
		return Plan{}, err
	}
	p := Plan{
		SKUs:       fleet,
		Donors:     donors,
		Bottleneck: bottleneck,
	}
	p.SpareDIMMs = int(math.Floor(float64(donors)*float64(spec.HighCapDIMMs)*y.DIMM)) - fleet*d.DIMMs
	p.SpareSSDs = int(math.Floor(float64(donors)*float64(spec.SSDs)*y.SSD)) - fleet*d.SSDs
	p.AvoidedEmbodied = units.KgCO2e(float64(fleet) * float64(AvoidedEmbodied(sku, data)))
	return p, nil
}
