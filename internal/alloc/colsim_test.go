package alloc

// Differential wall for the columnar streaming simulator: the three
// allocator implementations — materialized structs with the placement
// index (ReferenceLayout), materialized structs with the linear scan
// (ReferenceScan), and the default columnar fleet — must be
// decision-identical, and the pool-sharded multi replay must match the
// sequential one bit for bit. TestMain wraps the package in
// audit.SweepMain, so every columnar pick in these runs is also
// cross-checked against the columnar reference scan as it happens.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// TestDifferentialLayouts35Traces replays the production suite under
// every policy through all three implementations and demands
// bit-identical Results and identical per-VM placement sequences.
func TestDifferentialLayouts35Traces(t *testing.T) {
	traces, err := trace.ProductionSuite()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		traces = traces[:5]
	}
	totalPlaced, totalRejected := 0, 0
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		cfg := Config{
			Base:           baseClass(),
			NBase:          40,
			Green:          greenClass(),
			NGreen:         40,
			Policy:         pol,
			PreferNonEmpty: pol != FirstFit,
		}
		for _, tr := range traces {
			colRes, colSeq := runObserved(t, tr, cfg)

			structCfg := cfg
			structCfg.ReferenceLayout = true
			structRes, structSeq := runObserved(t, tr, structCfg)

			scanCfg := cfg
			scanCfg.ReferenceScan = true
			scanRes, scanSeq := runObserved(t, tr, scanCfg)

			for _, arm := range []struct {
				name string
				res  Result
				seq  []placeRec
			}{{"struct+index", structRes, structSeq}, {"struct+scan", scanRes, scanSeq}} {
				if !sameResult(colRes, arm.res) {
					t.Errorf("%s (%v): columnar Result %+v != %s %+v",
						tr.Name, pol, colRes, arm.name, arm.res)
				}
				if len(colSeq) != len(arm.seq) {
					t.Errorf("%s (%v): %d columnar placements vs %d %s",
						tr.Name, pol, len(colSeq), len(arm.seq), arm.name)
					continue
				}
				for i := range colSeq {
					if colSeq[i] != arm.seq[i] {
						t.Errorf("%s (%v): placement %d diverges: columnar %+v, %s %+v",
							tr.Name, pol, i, colSeq[i], arm.name, arm.seq[i])
						break
					}
				}
			}
			totalPlaced += colRes.Placed
			totalRejected += colRes.Rejected
		}
	}
	if totalPlaced == 0 || totalRejected == 0 {
		t.Fatalf("layout differential is degenerate: %d placed, %d rejected", totalPlaced, totalRejected)
	}
}

// TestDifferentialShardedMulti proves the pool-sharded pipeline
// replays identically to the sequential multi-pool simulator across
// the production suite, every policy, and several shard counts
// (including over-provisioned ones that clamp).
func TestDifferentialShardedMulti(t *testing.T) {
	traces, err := trace.ProductionSuite()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		traces = traces[:4]
	}
	decide := func(vm trace.VM) MultiDecision {
		switch vm.ID % 4 {
		case 0:
			return MultiDecision{Scales: []float64{1.2, 0, 1}}
		case 1:
			return MultiDecision{Scales: []float64{0, 1, 0}}
		case 2:
			return MultiDecision{Scales: []float64{1, 1.5, 1.1}}
		}
		return MultiDecision{}
	}
	sameMulti := func(a, b MultiResult) bool {
		if a.Placed != b.Placed || a.Rejected != b.Rejected || a.Snapshots != b.Snapshots ||
			!sameClassStats(a.Base, b.Base) || len(a.Green) != len(b.Green) {
			return false
		}
		for i := range a.Green {
			if !sameClassStats(a.Green[i], b.Green[i]) {
				return false
			}
		}
		return true
	}
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		mc := MultiConfig{
			Base:           Pool{Class: baseClass(), N: 30},
			Greens:         []Pool{{Class: greenClass(), N: 16}, {Class: baseClass(), N: 8}, {Class: greenClass(), N: 8}},
			Policy:         pol,
			PreferNonEmpty: pol != FirstFit,
		}
		for _, tr := range traces {
			want, err := SimulateMulti(tr, mc, decide)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 4, 64} {
				sharded := mc
				sharded.Shards = shards
				got, err := SimulateMulti(tr, sharded, decide)
				if err != nil {
					t.Fatalf("%s (%v, shards=%d): %v", tr.Name, pol, shards, err)
				}
				if !sameMulti(got, want) {
					t.Fatalf("%s (%v, shards=%d): sharded result %+v != sequential %+v",
						tr.Name, pol, shards, got, want)
				}
			}
		}
	}
}

// TestShardedMultiCancellation: a cancelled context must unwind every
// pipeline stage, not deadlock the pipes.
func TestShardedMultiCancellation(t *testing.T) {
	tr, err := trace.Generate(trace.DefaultParams("shard-cancel", 5))
	if err != nil {
		t.Fatal(err)
	}
	mc := MultiConfig{
		Base:   Pool{Class: baseClass(), N: 20},
		Greens: []Pool{{Class: greenClass(), N: 10}, {Class: baseClass(), N: 10}},
		Shards: 3,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateMultiContext(ctx, tr, mc, nil); err == nil {
		t.Fatal("cancelled sharded replay returned no error")
	}
}

// TestDifferentialSnapshotResume: for every production trace and
// policy, pausing the columnar replay at its midpoint through
// Snapshot/Restore yields the same Result bits and the same placement
// sequence as running straight through.
func TestDifferentialSnapshotResume(t *testing.T) {
	traces, err := trace.ProductionSuite()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		traces = traces[:5]
	}
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		cfg := Config{
			Base:           baseClass(),
			NBase:          40,
			Green:          greenClass(),
			NGreen:         40,
			Policy:         pol,
			PreferNonEmpty: pol != FirstFit,
		}
		for _, tr := range traces {
			wantRes, wantSeq := runObserved(t, tr, cfg)
			gotRes, gotSeq, err := resumedRun(tr, cfg, len(tr.VMs)/2)
			if err != nil {
				t.Fatalf("%s (%v): %v", tr.Name, pol, err)
			}
			if !sameResult(gotRes, wantRes) {
				t.Errorf("%s (%v): resumed Result %+v != straight-through %+v", tr.Name, pol, gotRes, wantRes)
			}
			if len(gotSeq) != len(wantSeq) {
				t.Errorf("%s (%v): %d resumed placements vs %d straight-through",
					tr.Name, pol, len(gotSeq), len(wantSeq))
				continue
			}
			for i := range gotSeq {
				if gotSeq[i] != wantSeq[i] {
					t.Errorf("%s (%v): placement %d diverges after resume: %+v vs %+v",
						tr.Name, pol, i, gotSeq[i], wantSeq[i])
					break
				}
			}
		}
	}
}

// resumedRun replays tr, checkpointing after `cut` events and
// continuing from the restored simulator, collecting the full
// placement sequence across the seam.
func resumedRun(tr trace.Trace, cfg Config, cut int) (Result, []placeRec, error) {
	var seq []placeRec
	testObserve = func(vmID int, green bool, serverID int32) {
		seq = append(seq, placeRec{vmID, green, serverID})
	}
	defer func() { testObserve = nil }()

	sim, err := NewSim(tr.Name, cfg, diffDecider)
	if err != nil {
		return Result{}, nil, err
	}
	for _, vm := range tr.VMs[:cut] {
		if err := sim.Step(vm); err != nil {
			return Result{}, nil, err
		}
	}
	var snap bytes.Buffer
	if err := sim.Snapshot(&snap); err != nil {
		return Result{}, nil, err
	}
	resumed, err := Restore(bytes.NewReader(snap.Bytes()), diffDecider, cfg.Audit)
	if err != nil {
		return Result{}, nil, err
	}
	if resumed.Events() != cut {
		return Result{}, nil, fmt.Errorf("restored sim reports %d events, want %d", resumed.Events(), cut)
	}
	for _, vm := range tr.VMs[cut:] {
		if err := resumed.Step(vm); err != nil {
			return Result{}, nil, err
		}
	}
	return resumed.Finish(tr.Horizon), seq, nil
}

// TestSnapshotEveryBoundary is the checkpoint property test: across 35
// seeded traces, snapshotting and restoring at EVERY event boundary
// (including before the first and after the last event) reproduces the
// uninterrupted replay's Result bit for bit.
func TestSnapshotEveryBoundary(t *testing.T) {
	const seeds = 35
	nSeeds := seeds
	if testing.Short() {
		nSeeds = 6
	}
	for seed := 0; seed < nSeeds; seed++ {
		full, err := trace.Generate(trace.DefaultParams(fmt.Sprintf("snap-prop-%d", seed), uint64(9000+seed*31)))
		if err != nil {
			t.Fatal(err)
		}
		// A short prefix keeps every-boundary quadratic cost trivial
		// while preserving arrival/departure interleaving.
		n := min(len(full.VMs), 40)
		tr := trace.Trace{Name: full.Name, Horizon: full.Horizon, VMs: full.VMs[:n]}
		cfg := Config{
			Base:           baseClass(),
			NBase:          4 + seed%5,
			Green:          greenClass(),
			NGreen:         2 + seed%3,
			Policy:         Policy(seed % 3),
			PreferNonEmpty: seed%2 == 0,
			SnapshotEvery:  6,
		}
		want, err := Simulate(tr, cfg, diffDecider)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut <= n; cut++ {
			got, _, err := resumedRun(tr, cfg, cut)
			if err != nil {
				t.Fatalf("seed %d cut %d: %v", seed, cut, err)
			}
			if !sameResult(got, want) {
				t.Fatalf("seed %d: resume at boundary %d/%d gives %+v, uninterrupted %+v",
					seed, cut, n, got, want)
			}
		}
	}
}

// TestSnapshotCorruptionRejected is the canary: any single corrupted
// byte — header or payload — and any truncation must make Restore
// refuse, never return a simulator.
func TestSnapshotCorruptionRejected(t *testing.T) {
	tr := smallTrace()
	sim, err := NewSim(tr.Name, Config{Base: baseClass(), NBase: 4, Green: greenClass(), NGreen: 2}, AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range tr.VMs {
		if err := sim.Step(vm); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sim.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Restore(bytes.NewReader(good), AdoptAll, nil); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for i := range good {
		bad := bytes.Clone(good)
		bad[i] ^= 0x40
		if _, err := Restore(bytes.NewReader(bad), AdoptAll, nil); err == nil {
			t.Fatalf("byte %d/%d flipped and Restore accepted it", i, len(good))
		}
	}
	for _, cut := range []int{0, 3, len(good) / 2, len(good) - 1} {
		if _, err := Restore(bytes.NewReader(good[:cut]), AdoptAll, nil); err == nil {
			t.Fatalf("snapshot truncated to %d bytes accepted", cut)
		}
	}
	if _, err := Restore(bytes.NewReader(append(bytes.Clone(good), 0)), AdoptAll, nil); err == nil {
		t.Fatal("snapshot with trailing byte accepted")
	}
}

// TestStepRejectsMalformed: the streaming path validates events at the
// door with the exact rules Trace.Validate applies, so a corrupt
// stream cannot push the simulator into undefined state.
func TestStepRejectsMalformed(t *testing.T) {
	mk := func() *Sim {
		s, err := NewSim("stream", Config{Base: baseClass(), NBase: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ok := trace.VM{ID: 0, Arrive: 1, Depart: 2, Cores: 2, Memory: 8, Gen: 2, MaxMemFrac: 0.5}
	cases := []struct {
		name   string
		mutate func(*trace.VM)
		want   string
	}{
		{"nan arrive", func(v *trace.VM) { v.Arrive = math.NaN() }, "non-finite field"},
		{"inf memory", func(v *trace.VM) { v.Memory = units.GB(math.Inf(1)) }, "non-finite field"},
		{"negative duration", func(v *trace.VM) { v.Depart = v.Arrive - 1 }, "departs before arriving"},
		{"zero duration", func(v *trace.VM) { v.Depart = v.Arrive }, "departs before arriving"},
		{"zero cores", func(v *trace.VM) { v.Cores = 0 }, "empty resource request"},
		{"bad generation", func(v *trace.VM) { v.Gen = 7 }, "generation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mk()
			vm := ok
			tc.mutate(&vm)
			err := s.Step(vm)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Step(%s) = %v, want error mentioning %q", tc.name, err, tc.want)
			}
		})
	}
	// Out-of-order arrivals are a stream property, not a field one.
	s := mk()
	if err := s.Step(ok); err != nil {
		t.Fatal(err)
	}
	early := ok
	early.ID, early.Arrive, early.Depart = 1, ok.Arrive-0.5, ok.Depart
	if err := s.Step(early); err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("out-of-order Step = %v, want 'not sorted'", err)
	}
}

// synthSource streams n synthetic arrivals without materializing them:
// the memory-footprint probe. Lifetimes are short so the concurrent VM
// population — and thus the simulator's working set — stays bounded
// regardless of n.
type synthSource struct {
	n, i int
}

func (s *synthSource) Next() (trace.VM, bool) {
	if s.i >= s.n {
		return trace.VM{}, false
	}
	i := s.i
	s.i++
	return trace.VM{
		ID:         i,
		Arrive:     float64(i) * 1e-3,
		Depart:     float64(i)*1e-3 + 0.4,
		Cores:      4,
		Memory:     16,
		Gen:        2,
		MaxMemFrac: 0.5,
	}, true
}

func (s *synthSource) Err() error       { return nil }
func (s *synthSource) Name() string     { return "synth" }
func (s *synthSource) Horizon() float64 { return float64(s.n)*1e-3 + 1 }

// TestStreamingFootprintIsEventCountIndependent asserts the O(servers)
// memory claim: quadrupling the event count of a streamed replay must
// not grow its allocated bytes materially, because the simulator's
// state is the touched fleet plus the bounded departure heap — never
// the event stream.
func TestStreamingFootprintIsEventCountIndependent(t *testing.T) {
	cfg := Config{Base: baseClass(), NBase: 1000}
	run := func(events int) uint64 {
		src := &synthSource{n: events}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := SimulateSource(context.Background(), src, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		if res.Placed != events {
			t.Fatalf("synthetic run placed %d of %d", res.Placed, events)
		}
		return after.TotalAlloc - before.TotalAlloc
	}
	base := run(20_000)
	big := run(80_000)
	// Identical working set, 4x the events: allow generous slack for
	// runtime noise, but nothing near another working set's worth.
	if limit := base + base/2 + 1<<20; big > limit {
		t.Fatalf("4x events allocated %d bytes vs %d for 1x (limit %d): streaming path is O(events)",
			big, base, limit)
	}
}

// TestSimulateSourceMatchesMaterialized closes the loop across the
// trace and alloc layers: a binary-encoded trace streamed through
// SimulateSource must produce the same Result bits as the materialized
// replay of the same trace.
func TestSimulateSourceMatchesMaterialized(t *testing.T) {
	tr, err := trace.Generate(trace.DefaultParams("stream-vs-mat", 77))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Base: baseClass(), NBase: 12, Green: greenClass(), NGreen: 6, PreferNonEmpty: true}
	want, err := Simulate(tr, cfg, diffDecider)
	if err != nil {
		t.Fatal(err)
	}
	br, err := trace.NewBinaryReader(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateSource(context.Background(), br, cfg, diffDecider)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(got, want) {
		t.Fatalf("streamed binary replay %+v != materialized replay %+v", got, want)
	}
}
