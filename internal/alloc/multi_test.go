package alloc

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/trace"
)

func twoGreens() []Pool {
	return []Pool{
		{Class: ServerClass{Name: "green-a", Cores: 128, Memory: 1152, LocalMemory: 1152, Green: true}, N: 1},
		{Class: ServerClass{Name: "green-b", Cores: 128, Memory: 1024, LocalMemory: 768, Green: true}, N: 1},
	}
}

func TestMultiPrefersEarlierPool(t *testing.T) {
	tr := trace.Trace{Name: "m", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 8, Memory: 32, Gen: 3, MaxMemFrac: 0.5},
	}}
	both := func(trace.VM) MultiDecision { return MultiDecision{Scales: []float64{1, 1}} }
	res, err := SimulateMulti(tr, MultiConfig{Base: Pool{Class: baseClass(), N: 1}, Greens: twoGreens(), Policy: BestFit, PreferNonEmpty: true, SnapshotEvery: 1}, both)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Green[0].CorePacking) {
		t.Fatal("first pool should host the VM")
	}
	if !math.IsNaN(res.Green[1].CorePacking) {
		t.Fatal("second pool should stay empty when the first has room")
	}
}

func TestMultiFallsThroughPools(t *testing.T) {
	// First pool forbidden, second allowed.
	tr := trace.Trace{Name: "m", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 8, Memory: 32, Gen: 3, MaxMemFrac: 0.5},
	}}
	secondOnly := func(trace.VM) MultiDecision { return MultiDecision{Scales: []float64{0, 1.25}} }
	res, err := SimulateMulti(tr, MultiConfig{Base: Pool{Class: baseClass(), N: 1}, Greens: twoGreens(), Policy: BestFit, PreferNonEmpty: true, SnapshotEvery: 1}, secondOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Green[0].CorePacking) {
		t.Fatal("forbidden pool used")
	}
	// Scaled 1.25x: 10 cores of 128.
	if math.Abs(res.Green[1].CorePacking-10.0/128) > 0.01 {
		t.Fatalf("second pool packing = %v, want 10/128", res.Green[1].CorePacking)
	}
}

func TestMultiFallsBackToBaseline(t *testing.T) {
	tr := trace.Trace{Name: "m", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 8, Memory: 32, Gen: 3, MaxMemFrac: 0.5},
	}}
	none := func(trace.VM) MultiDecision { return MultiDecision{} }
	res, err := SimulateMulti(tr, MultiConfig{Base: Pool{Class: baseClass(), N: 1}, Greens: twoGreens(), Policy: BestFit, PreferNonEmpty: true, SnapshotEvery: 1}, none)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 || math.IsNaN(res.Base.CorePacking) {
		t.Fatal("VM should land on the baseline")
	}
}

func TestMultiFullNodePinsToBaseline(t *testing.T) {
	tr := trace.Trace{Name: "m", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 80, Memory: 768, Gen: 3, FullNode: true, MaxMemFrac: 0.5},
	}}
	both := func(trace.VM) MultiDecision { return MultiDecision{Scales: []float64{1, 1}} }
	res, err := SimulateMulti(tr, MultiConfig{Base: Pool{Class: baseClass(), N: 1}, Greens: twoGreens(), Policy: BestFit, PreferNonEmpty: true, SnapshotEvery: 1}, both)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Base.CorePacking-1) > 1e-9 {
		t.Fatalf("full-node VM not on baseline: %v", res.Base.CorePacking)
	}
}

func TestMultiMatchesSingleWhenOnePool(t *testing.T) {
	// With one green pool and equivalent directives, SimulateMulti
	// must agree with Simulate.
	p := trace.DefaultParams("multi-vs-single", 77)
	p.HorizonHours = 72
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Base: baseClass(), NBase: 30,
		Green: greenClass(), NGreen: 15,
		Policy: BestFit, PreferNonEmpty: true,
	}
	single, err := Simulate(tr, cfg, AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SimulateMulti(tr, MultiConfig{
		Base:           Pool{Class: baseClass(), N: 30},
		Greens:         []Pool{{Class: greenClass(), N: 15}},
		Policy:         BestFit,
		PreferNonEmpty: true,
	}, func(trace.VM) MultiDecision { return MultiDecision{Scales: []float64{1}} })
	if err != nil {
		t.Fatal(err)
	}
	if single.Placed != multi.Placed || single.Rejected != multi.Rejected {
		t.Fatalf("placement diverged: single %d/%d vs multi %d/%d",
			single.Placed, single.Rejected, multi.Placed, multi.Rejected)
	}
	if math.Abs(single.Green.CorePacking-multi.Green[0].CorePacking) > 1e-9 {
		t.Fatalf("green packing diverged: %v vs %v", single.Green.CorePacking, multi.Green[0].CorePacking)
	}
}

func TestMultiValidation(t *testing.T) {
	tr := smallTrace()
	if _, err := SimulateMulti(tr, MultiConfig{}, nil); err == nil {
		t.Error("accepted an empty cluster")
	}
	bad := []Pool{{Class: ServerClass{Name: "x"}, N: 3}}
	if _, err := SimulateMulti(tr, MultiConfig{Base: Pool{Class: baseClass(), N: 1}, Greens: bad}, nil); err == nil {
		t.Error("accepted a zero-capacity green pool")
	}
}
