package alloc

import (
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/trace"
)

func TestAuditCleanOnValidSimulation(t *testing.T) {
	rec := audit.NewRecorder()
	cfg := Config{Base: baseClass(), NBase: 2, Green: greenClass(), NGreen: 1, Audit: rec}
	if _, err := Simulate(smallTrace(), cfg, AdoptAll); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("clean simulation recorded violations: %v\n%v", err, rec.Violations())
	}
}

func TestAuditCleanOnSyntheticTrace(t *testing.T) {
	p := trace.DefaultParams("audit-synth", 42)
	p.HorizonHours = 72
	p.ArrivalsPerHour = 5
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := audit.NewRecorder()
	cfg := Config{
		Base: baseClass(), NBase: 6,
		Green: greenClass(), NGreen: 4,
		PreferNonEmpty: true,
		Audit:          rec,
	}
	res, err := Simulate(tr, cfg, AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 {
		t.Fatal("synthetic trace placed no VMs; test exercises nothing")
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("synthetic simulation recorded violations: %v\n%v", err, rec.Violations())
	}
}

// TestAuditCatchesBrokenAllocator proves the audit layer detects a
// deliberately broken allocator: with the feasibility check disabled,
// pick oversubscribes servers and the core/memory conservation and
// admissibility checks must fire.
func TestAuditCatchesBrokenAllocator(t *testing.T) {
	testIgnoreCapacity = true
	defer func() { testIgnoreCapacity = false }()

	// One tiny server, demand far beyond it: the broken pick places
	// everything anyway.
	over := trace.Trace{Name: "over", Horizon: 20, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 19, Cores: 60, Memory: 600, Gen: 3, MaxMemFrac: 0.5},
		{ID: 1, Arrive: 2, Depart: 19, Cores: 60, Memory: 600, Gen: 3, MaxMemFrac: 0.5},
		{ID: 2, Arrive: 3, Depart: 19, Cores: 60, Memory: 600, Gen: 3, MaxMemFrac: 0.5},
	}}
	rec := audit.NewRecorder()
	res, err := Simulate(over, Config{Base: baseClass(), NBase: 1, Audit: rec}, AdoptNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("broken allocator rejected %d VMs; expected it to place everything", res.Rejected)
	}
	if rec.Count() == 0 {
		t.Fatal("audit recorded no violations for an oversubscribing allocator")
	}
	counts := rec.Counts()
	if counts["alloc/admissibility"] == 0 {
		t.Errorf("no admissibility violations recorded; counts = %v", counts)
	}
	if counts["alloc/core-conservation"] == 0 && counts["alloc/memory-conservation"] == 0 {
		t.Errorf("no conservation violations recorded; counts = %v", counts)
	}
	for _, v := range rec.Violations() {
		if !strings.HasPrefix(v.String(), "alloc/") {
			t.Errorf("violation from unexpected component: %s", v)
		}
	}
}

// TestAuditExplicitCheckerWins pins Resolve precedence: a per-config
// Recorder receives the violations even when a process default is
// installed (as it is under TestMain's SweepMain).
func TestAuditExplicitCheckerWins(t *testing.T) {
	testIgnoreCapacity = true
	defer func() { testIgnoreCapacity = false }()

	over := trace.Trace{Name: "over", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 100, Memory: 900, Gen: 3, MaxMemFrac: 0.5},
	}}
	rec := audit.NewRecorder()
	if _, err := Simulate(over, Config{Base: baseClass(), NBase: 1, Audit: rec}, AdoptNone); err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Fatal("explicit recorder received no violations")
	}
	// The process-default recorder must stay clean — SweepMain would
	// otherwise fail the whole run after the tests pass.
}
