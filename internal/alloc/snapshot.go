package alloc

// Simulator checkpoints: the GSFS binary codec.
//
// Between Steps, a Sim's entire state is flat data — columns, running
// sums, the departure heap's backing array, a few scalars. Snapshot
// serializes exactly that and Restore rebuilds it, so a restored
// simulator continues bit-identically to one that never paused: same
// placements, same Result bits (the property suite proves this at
// every event boundary). That makes checkpoints two things at once —
// a resume point for long replays, and a fork point for what-if
// placement runs (gsfd's replay endpoint restores one snapshot many
// times under different deciders).
//
// Layout: "GSFS" magic, a uvarint version, a uvarint payload length,
// an IEEE CRC32 of the payload, then the payload. The CRC turns any
// torn write or bit flip into a refusal rather than a silently wrong
// continuation. Within the payload, floats travel as raw IEEE bits
// (checkpoint state is drifted mid-computation data, where exactness
// matters and round-number compression does not), counts as uvarints.
// The departure heap is written in backing-array order and restored
// verbatim, preserving the pop order of equal-time departures.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/units"
)

const (
	snapMagic   = "GSFS"
	snapVersion = 1
	// maxSnapName caps decoded string lengths. Slice lengths are
	// bounded by the declared pool sizes and the payload length, so a
	// corrupted count cannot demand an absurd allocation.
	maxSnapName = 1 << 12
)

type snapWriter struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *snapWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *snapWriter) f64(v float64) {
	binary.LittleEndian.PutUint64(w.tmp[:8], math.Float64bits(v))
	w.buf.Write(w.tmp[:8])
}

func (w *snapWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *snapWriter) bool(b bool) {
	if b {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

func (w *snapWriter) class(c *ServerClass) {
	w.str(c.Name)
	w.uvarint(uint64(c.Cores))
	w.f64(float64(c.Memory))
	w.f64(float64(c.LocalMemory))
	w.bool(c.Green)
}

func (w *snapWriter) fleet(f *fleet) {
	w.uvarint(uint64(f.frontier))
	for id := int32(0); id < f.frontier; id++ {
		w.f64(f.coresFree[id])
		w.f64(f.memFree[id])
		w.uvarint(uint64(f.vms[id]))
		w.f64(f.touched[id])
	}
}

func (w *snapWriter) agg(a *aggregator) {
	w.f64(a.corePackSum)
	w.f64(a.memPackSum)
	w.uvarint(uint64(a.packObs))
	w.f64(a.maxMemUtilSum)
	w.f64(a.cxlFracSum)
	w.uvarint(uint64(a.cxlObs))
	w.uvarint(uint64(a.localFits))
	w.uvarint(uint64(a.observed))
}

// Snapshot writes a GSFS checkpoint of the simulator's current state.
// Call it only between Steps (or before Finish); a finished simulator
// has drained its audit state and is not resumable.
func (s *Sim) Snapshot(w io.Writer) error {
	var p snapWriter
	p.str(s.name)
	p.uvarint(uint64(s.cfg.Policy))
	p.bool(s.cfg.PreferNonEmpty)
	p.uvarint(uint64(s.cfg.NBase))
	p.uvarint(uint64(s.cfg.NGreen))
	p.f64(s.snapEvery)
	p.class(&s.cfg.Base)
	p.class(&s.cfg.Green)

	p.f64(s.lastArrive)
	p.uvarint(uint64(s.events))
	p.f64(s.nextSnap)
	p.uvarint(uint64(s.res.Placed))
	p.uvarint(uint64(s.res.Rejected))
	p.uvarint(uint64(s.res.DeferrablePlaced))
	p.uvarint(uint64(s.res.DeferrableRejected))
	p.uvarint(uint64(s.res.Snapshots))

	p.fleet(&s.base)
	p.fleet(&s.green)
	p.agg(&s.baseAgg)
	p.agg(&s.greenAgg)

	p.uvarint(uint64(len(s.deps)))
	for i := range s.deps {
		d := &s.deps[i]
		p.f64(d.at)
		p.f64(d.cores)
		p.f64(d.mem)
		p.f64(d.touched)
		p.uvarint(uint64(d.id))
		p.bool(d.green)
	}

	payload := p.buf.Bytes()
	var hdr snapWriter
	hdr.buf.WriteString(snapMagic)
	hdr.uvarint(snapVersion)
	hdr.uvarint(uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr.tmp[:4], crc32.ChecksumIEEE(payload))
	hdr.buf.Write(hdr.tmp[:4])
	if _, err := w.Write(hdr.buf.Bytes()); err != nil {
		return fmt.Errorf("alloc: writing snapshot header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("alloc: writing snapshot payload: %w", err)
	}
	return nil
}

type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) fail(what string) error {
	return fmt.Errorf("alloc: corrupt snapshot: %s at offset %d", what, r.off)
}

func (r *snapReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	return v, nil
}

func (r *snapReader) f64(what string) (float64, error) {
	if r.off+8 > len(r.b) {
		return 0, r.fail(what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *snapReader) str(what string) (string, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > maxSnapName || r.off+int(n) > len(r.b) {
		return "", r.fail(what)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *snapReader) bool(what string) (bool, error) {
	if r.off >= len(r.b) {
		return false, r.fail(what)
	}
	b := r.b[r.off]
	r.off++
	if b > 1 {
		return false, r.fail(what)
	}
	return b == 1, nil
}

func (r *snapReader) class(c *ServerClass) error {
	name, err := r.str("class name")
	if err != nil {
		return err
	}
	cores, err := r.uvarint("class cores")
	if err != nil {
		return err
	}
	mem, err := r.f64("class memory")
	if err != nil {
		return err
	}
	local, err := r.f64("class local memory")
	if err != nil {
		return err
	}
	green, err := r.bool("class green")
	if err != nil {
		return err
	}
	*c = ServerClass{Name: name, Cores: int(cores), Green: green,
		Memory: units.GB(mem), LocalMemory: units.GB(local)}
	return nil
}

func (r *snapReader) fleet(f *fleet) error {
	frontier, err := r.uvarint("fleet frontier")
	if err != nil {
		return err
	}
	if frontier > uint64(f.n) {
		return r.fail("frontier past pool size")
	}
	n := int32(frontier)
	f.coresFree = make([]float64, n)
	f.memFree = make([]float64, n)
	f.vms = make([]int32, n)
	f.touched = make([]float64, n)
	for id := int32(0); id < n; id++ {
		if f.coresFree[id], err = r.f64("server cores"); err != nil {
			return err
		}
		if f.memFree[id], err = r.f64("server memory"); err != nil {
			return err
		}
		vms, err := r.uvarint("server vm count")
		if err != nil {
			return err
		}
		if vms > 1<<31 {
			return r.fail("server vm count")
		}
		f.vms[id] = int32(vms)
		if f.touched[id], err = r.f64("server touched memory"); err != nil {
			return err
		}
	}
	// Rebuild the index from the restored columns. Treap shapes can
	// differ from the writer's when priorities collide, but every index
	// query is key-deterministic, so decisions are unaffected.
	f.frontier = n
	if n > 0 {
		f.ix.initCore(int(n))
		for id := int32(0); id < n; id++ {
			f.ix.attachID(id, f.coresFree[id], f.memFree[id], f.vms[id] > 0)
		}
	}
	return nil
}

func (r *snapReader) agg(a *aggregator) error {
	var err error
	if a.corePackSum, err = r.f64("aggregator sums"); err != nil {
		return err
	}
	if a.memPackSum, err = r.f64("aggregator sums"); err != nil {
		return err
	}
	packObs, err := r.uvarint("aggregator counts")
	if err != nil {
		return err
	}
	if a.maxMemUtilSum, err = r.f64("aggregator sums"); err != nil {
		return err
	}
	if a.cxlFracSum, err = r.f64("aggregator sums"); err != nil {
		return err
	}
	cxlObs, err := r.uvarint("aggregator counts")
	if err != nil {
		return err
	}
	localFits, err := r.uvarint("aggregator counts")
	if err != nil {
		return err
	}
	observed, err := r.uvarint("aggregator counts")
	if err != nil {
		return err
	}
	a.packObs, a.cxlObs = int(packObs), int(cxlObs)
	a.localFits, a.observed = int(localFits), int(observed)
	return nil
}

// Restore reads a GSFS checkpoint and returns a simulator that
// continues bit-identically from where Snapshot was taken. The decider
// and audit checker are live code, not data, so the caller supplies
// them again; nil means AdoptNone and the process-default checker, as
// in NewSim. Corruption anywhere — header, length, payload — is
// rejected, never partially applied.
func Restore(rd io.Reader, decide Decider, chk audit.Checker) (*Sim, error) {
	var magic [4]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil {
		return nil, fmt.Errorf("alloc: reading snapshot magic: %w", err)
	}
	if string(magic[:]) != snapMagic {
		return nil, fmt.Errorf("alloc: not a GSFS snapshot (magic %q)", magic[:])
	}
	br := byteReaderOf(rd)
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("alloc: reading snapshot version: %w", err)
	}
	if version != snapVersion {
		return nil, fmt.Errorf("alloc: unsupported snapshot version %d (have %d)", version, snapVersion)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("alloc: reading snapshot length: %w", err)
	}
	if plen > 1<<34 {
		return nil, fmt.Errorf("alloc: snapshot payload length %d implausible", plen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(rd, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("alloc: reading snapshot checksum: %w", err)
	}
	wantCRC := binary.LittleEndian.Uint32(crcBuf[:])
	payload := make([]byte, plen)
	if _, err := io.ReadFull(rd, payload); err != nil {
		return nil, fmt.Errorf("alloc: reading snapshot payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("alloc: snapshot checksum mismatch: payload %08x, header %08x", got, wantCRC)
	}

	r := &snapReader{b: payload}
	s := &Sim{decide: decide, chk: audit.Resolve(chk)}
	if s.decide == nil {
		s.decide = AdoptNone
	}
	if s.name, err = r.str("name"); err != nil {
		return nil, err
	}
	pol, err := r.uvarint("policy")
	if err != nil {
		return nil, err
	}
	s.cfg.Policy = Policy(pol)
	if s.cfg.PreferNonEmpty, err = r.bool("prefer-non-empty"); err != nil {
		return nil, err
	}
	nBase, err := r.uvarint("base pool size")
	if err != nil {
		return nil, err
	}
	nGreen, err := r.uvarint("green pool size")
	if err != nil {
		return nil, err
	}
	if nBase > 1<<31 || nGreen > 1<<31 {
		return nil, r.fail("pool size")
	}
	s.cfg.NBase, s.cfg.NGreen = int(nBase), int(nGreen)
	if s.snapEvery, err = r.f64("snapshot interval"); err != nil {
		return nil, err
	}
	s.cfg.SnapshotEvery = s.snapEvery
	if err := r.class(&s.cfg.Base); err != nil {
		return nil, err
	}
	if err := r.class(&s.cfg.Green); err != nil {
		return nil, err
	}

	if s.lastArrive, err = r.f64("last arrival"); err != nil {
		return nil, err
	}
	events, err := r.uvarint("event count")
	if err != nil {
		return nil, err
	}
	s.events = int(events)
	if s.nextSnap, err = r.f64("next snapshot time"); err != nil {
		return nil, err
	}
	for _, c := range []*int{&s.res.Placed, &s.res.Rejected, &s.res.DeferrablePlaced, &s.res.DeferrableRejected, &s.res.Snapshots} {
		v, err := r.uvarint("result counter")
		if err != nil {
			return nil, err
		}
		*c = int(v)
	}

	s.base = newFleet(s.cfg.Base, s.cfg.NBase)
	s.green = newFleet(s.cfg.Green, s.cfg.NGreen)
	if err := r.fleet(&s.base); err != nil {
		return nil, err
	}
	if err := r.fleet(&s.green); err != nil {
		return nil, err
	}
	if err := r.agg(&s.baseAgg); err != nil {
		return nil, err
	}
	if err := r.agg(&s.greenAgg); err != nil {
		return nil, err
	}

	nDeps, err := r.uvarint("departure count")
	if err != nil {
		return nil, err
	}
	if nDeps > uint64(len(payload)) { // each departure is >= 34 bytes
		return nil, r.fail("departure count")
	}
	s.deps = make(colDepHeap, nDeps)
	for i := range s.deps {
		d := &s.deps[i]
		if d.at, err = r.f64("departure time"); err != nil {
			return nil, err
		}
		if d.cores, err = r.f64("departure cores"); err != nil {
			return nil, err
		}
		if d.mem, err = r.f64("departure memory"); err != nil {
			return nil, err
		}
		if d.touched, err = r.f64("departure touched memory"); err != nil {
			return nil, err
		}
		id, err := r.uvarint("departure server id")
		if err != nil {
			return nil, err
		}
		if d.green, err = r.bool("departure pool"); err != nil {
			return nil, err
		}
		f := &s.base
		if d.green {
			f = &s.green
		}
		if id >= uint64(f.frontier) {
			return nil, r.fail("departure names an untouched server")
		}
		d.id = int32(id)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("alloc: corrupt snapshot: %d trailing payload bytes", len(payload)-r.off)
	}
	// A snapshot is a complete artifact, not a stream element: anything
	// after the declared payload is corruption.
	var one [1]byte
	if _, err := io.ReadFull(rd, one[:]); err != io.EOF {
		return nil, fmt.Errorf("alloc: corrupt snapshot: trailing data after payload")
	}
	return s, nil
}

// byteReaderOf adapts any reader for binary.ReadUvarint without
// over-reading: one byte at a time unless the reader already is one.
func byteReaderOf(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return &oneByteReader{r: r}
}

type oneByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (o *oneByteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(o.r, o.buf[:1])
	return o.buf[0], err
}
