// Package alloc implements GSF's VM allocation component (§IV-C, §V): a
// VM placement simulator capturing the key rules of Azure's production
// scheduler — best-fit placement to reduce fragmentation, a preference
// for non-empty servers, and placement constraints (full-node VMs pin to
// baseline SKUs; only adopting VMs may land on GreenSKUs, with their
// requests scaled by the application's scaling factor).
//
// The simulator replays a trace against a fixed cluster of baseline and
// GreenSKU servers and reports rejections, packing densities, and
// per-server memory-utilisation snapshots — the measurements behind
// Figs. 9 and 10.
package alloc

import (
	"context"
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// ServerClass describes one SKU's capacity as seen by the scheduler.
type ServerClass struct {
	Name   string
	Cores  int
	Memory units.GB
	// LocalMemory is the direct-attached (DDR5) portion; memory above
	// it is served from CXL. Equal to Memory when the SKU has no CXL.
	LocalMemory units.GB
	Green       bool
}

// Decision is the adoption component's directive for one VM.
type Decision struct {
	// Adopt permits placement on GreenSKU servers.
	Adopt bool
	// Scale multiplies the VM's core and memory request when placed
	// on a GreenSKU (the application's scaling factor; >= 1).
	Scale float64
}

// Decider maps a VM to its placement directive.
type Decider func(trace.VM) Decision

// AdoptAll places every non-full-node VM on GreenSKUs unscaled; useful
// as a baseline policy and in tests.
func AdoptAll(trace.VM) Decision { return Decision{Adopt: true, Scale: 1} }

// AdoptNone keeps every VM on baseline servers.
func AdoptNone(trace.VM) Decision { return Decision{} }

// Policy selects among feasible servers.
type Policy int

const (
	// BestFit picks the feasible server with the least free cores
	// (ties: least free memory) — the production default.
	BestFit Policy = iota
	// FirstFit picks the lowest-indexed feasible server.
	FirstFit
	// WorstFit picks the feasible server with the most free cores
	// (ties: most free memory), the spreading counterpart of BestFit.
	WorstFit
)

func (p Policy) String() string {
	switch p {
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy is String's inverse; the empty string selects BestFit,
// the production default.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "best-fit":
		return BestFit, nil
	case "first-fit":
		return FirstFit, nil
	case "worst-fit":
		return WorstFit, nil
	}
	return 0, fmt.Errorf("alloc: unknown policy %q (want best-fit, first-fit, or worst-fit)", s)
}

// Config describes the simulated cluster.
type Config struct {
	Base   ServerClass
	NBase  int
	Green  ServerClass
	NGreen int
	Policy Policy
	// PreferNonEmpty applies the production rule of packing onto
	// already-occupied servers when possible.
	PreferNonEmpty bool
	// SnapshotEvery controls how often (in trace hours) utilisation
	// snapshots are taken. Zero defaults to 12h.
	SnapshotEvery float64
	// Audit receives invariant violations (core/memory conservation,
	// placement admissibility, spurious rejections). Nil falls back to
	// the process default (audit.SetDefault); if that is also nil,
	// checking is disabled and costs nothing.
	Audit audit.Checker
	// ReferenceScan disables the O(log S) placement index and selects
	// servers with the original O(S) linear scan. The two paths are
	// decision-identical (proven by the differential suite; audited
	// runs additionally cross-check every indexed pick against the
	// scan); the flag exists so the reference implementation stays
	// executable for differential tests and benchmarks.
	ReferenceScan bool
	// ReferenceLayout keeps the original materialized server structs
	// (one heap object per server, built up front) instead of the
	// columnar fleet (colsim.go) that the default path now runs on.
	// The layouts are decision-identical — proven by the differential
	// suite — and the flag keeps the struct implementation executable
	// for those proofs and for layout benchmarks. Implied by
	// ReferenceScan, which has no columnar counterpart.
	ReferenceLayout bool
}

type server struct {
	class     *ServerClass
	coresFree float64
	memFree   float64
	vms       int
	// maxMemTouched accumulates the resident VMs' maximum touched
	// memory in GB (request * MaxMemFrac), the Fig. 10 metric.
	maxMemTouched float64
	// id is the server's index within its pool — the placement
	// tie-break of last resort, and its node slot in the pool's index.
	id int32
	// ix is the pool's placement index, or nil when running the
	// reference scan; mutations must detach from and re-attach to it.
	ix *poolIndex
}

func (s *server) fits(cores, mem float64) bool {
	return s.coresFree >= cores && s.memFree >= mem
}

type departure struct {
	at         float64
	srv        *server
	cores, mem float64
	touched    float64
}

// depHeap is a min-heap of pending departures ordered by time. It uses
// typed push/pop rather than container/heap: the interface-based API
// boxes every departure through an interface{}, one heap allocation per
// placement on the simulator's hot path. The sift directions mirror
// container/heap's exactly, so equal-time departures pop in the same
// order as before.
type depHeap []departure

func depPush(h *depHeap, d departure) {
	*h = append(*h, d)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hh[parent].at <= hh[i].at {
			break
		}
		hh[parent], hh[i] = hh[i], hh[parent]
		i = parent
	}
}

func depPop(h *depHeap) departure {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = departure{} // drop the server pointer for the collector
	*h = hh[:n]
	depSiftDown(hh[:n], 0)
	return top
}

func depSiftDown(h depHeap, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].at < h[l].at {
			m = r
		}
		if h[i].at <= h[m].at {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// ClassStats aggregates snapshot measurements for one server class.
type ClassStats struct {
	// CorePacking and MemPacking are mean packing densities across
	// snapshots: allocated/allocatable on non-empty servers.
	CorePacking float64
	MemPacking  float64
	// MaxMemUtil is the mean per-server maximum memory utilisation:
	// the resident VMs' aggregate touched memory over server memory.
	MaxMemUtil float64
	// CXLServedFrac is the mean fraction of touched memory that
	// spills past local DDR5 onto CXL (zero for non-CXL classes).
	CXLServedFrac float64
	// LocalFitsFrac is the fraction of snapshot server observations
	// whose touched memory fits entirely in local DDR5.
	LocalFitsFrac float64
}

// Result summarises one simulation.
type Result struct {
	Placed   int
	Rejected int
	// DeferrablePlaced/DeferrableRejected split the counts for
	// delay-tolerant VMs, so carbon-aware re-timing experiments can
	// see whether shifting starved the deferrable class specifically.
	DeferrablePlaced   int
	DeferrableRejected int
	Base               ClassStats
	Green              ClassStats
	Snapshots          int
}

// Simulate replays the trace against the configured cluster.
func Simulate(tr trace.Trace, cfg Config, decide Decider) (Result, error) {
	return SimulateContext(context.Background(), tr, cfg, decide)
}

// SimulateContext is Simulate with cancellation: the arrival loop polls
// ctx every 1024 VMs and returns the context error once observed.
//
// The default path streams the trace through the columnar simulator
// (colsim.go); Config.ReferenceScan and Config.ReferenceLayout select
// the materialized-struct reference implementation below, which the
// differential suite proves decision-identical.
func SimulateContext(ctx context.Context, tr trace.Trace, cfg Config, decide Decider) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if !cfg.ReferenceLayout && !cfg.ReferenceScan && !testIgnoreCapacity {
		return SimulateSource(ctx, trace.NewSliceSource(tr), cfg, decide)
	}
	if cfg.NBase < 0 || cfg.NGreen < 0 || cfg.NBase+cfg.NGreen == 0 {
		return Result{}, fmt.Errorf("alloc: cluster needs at least one server")
	}
	if cfg.NBase > 0 && (cfg.Base.Cores <= 0 || cfg.Base.Memory <= 0) {
		return Result{}, fmt.Errorf("alloc: baseline class has no capacity")
	}
	if cfg.NGreen > 0 && (cfg.Green.Cores <= 0 || cfg.Green.Memory <= 0) {
		return Result{}, fmt.Errorf("alloc: green class has no capacity")
	}
	if decide == nil {
		decide = AdoptNone
	}
	snapEvery := cfg.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 12
	}

	chk := audit.Resolve(cfg.Audit)

	baseSrvs := makeServers(&cfg.Base, cfg.NBase)
	greenSrvs := makeServers(&cfg.Green, cfg.NGreen)

	// Build the placement index unless the caller asked for the
	// reference scan. testIgnoreCapacity forces the scan too: it
	// deliberately breaks feasibility so the audit canary tests can
	// watch the scan path get caught.
	var baseIx, greenIx *poolIndex
	if !cfg.ReferenceScan && !testIgnoreCapacity {
		baseIx = newPoolIndex(baseSrvs)
		greenIx = newPoolIndex(greenSrvs)
	}

	var deps depHeap
	var res Result
	baseAgg := newAggregator()
	greenAgg := newAggregator()
	nextSnap := snapEvery

	release := func(until float64) {
		for len(deps) > 0 && deps[0].at <= until {
			d := depPop(&deps)
			s := d.srv
			if s.ix != nil {
				s.ix.detach(s)
			}
			s.coresFree += d.cores
			s.memFree += d.mem
			s.vms--
			s.maxMemTouched -= d.touched
			if s.ix != nil {
				s.ix.attach(s)
			}
			if chk != nil {
				auditServerBounds(chk, s, "release")
			}
		}
	}

	for i, vm := range tr.VMs {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		// Take snapshots and release departed VMs up to this arrival.
		for nextSnap <= vm.Arrive {
			release(nextSnap)
			baseAgg.observe(baseSrvs)
			greenAgg.observe(greenSrvs)
			res.Snapshots++
			nextSnap += snapEvery
		}
		release(vm.Arrive)

		d := decide(vm)
		if d.Scale < 1 {
			d.Scale = 1
		}
		var placedSrv *server
		var cores, mem float64
		placedGreen := false
		if vm.FullNode {
			// Full-node VMs take a dedicated, empty baseline server.
			full := float64(cfg.Base.Cores)
			fullMem := float64(cfg.Base.Memory)
			if baseIx != nil {
				placedSrv = baseIx.firstEmptyFitting(full, fullMem)
				if chk != nil {
					auditFullNodePick(chk, baseSrvs, placedSrv, full, fullMem)
				}
			} else {
				for _, s := range baseSrvs {
					if s.vms == 0 && s.fits(full, fullMem) {
						placedSrv = s
						break
					}
				}
			}
			if placedSrv != nil {
				cores, mem = full, fullMem
			}
		} else {
			if d.Adopt && cfg.NGreen > 0 {
				cores = float64(vm.Cores) * d.Scale
				mem = float64(vm.Memory) * d.Scale
				placedSrv = pickFrom(chk, greenIx, greenSrvs, cores, mem, cfg)
				placedGreen = placedSrv != nil
			}
			if placedSrv == nil {
				cores = float64(vm.Cores)
				mem = float64(vm.Memory)
				placedSrv = pickFrom(chk, baseIx, baseSrvs, cores, mem, cfg)
			}
		}
		if placedSrv == nil {
			if chk != nil {
				auditRejection(chk, vm, baseSrvs, greenSrvs, baseIx, greenIx, d, cfg)
			}
			res.Rejected++
			if vm.Deferrable {
				res.DeferrableRejected++
			}
			continue
		}
		if chk != nil {
			// Admissibility: the chosen server must actually fit the
			// request, and the VM must not already have departed.
			if !placedSrv.fits(cores, mem) {
				audit.Failf(chk, "alloc", "admissibility",
					"VM %d (%gc/%gGB) placed on %s with only %gc/%gGB free",
					vm.ID, cores, mem, placedSrv.class.Name, placedSrv.coresFree, placedSrv.memFree)
			}
			if vm.Depart <= vm.Arrive {
				audit.Failf(chk, "alloc", "placed-after-departure",
					"VM %d placed at t=%g after its departure t=%g", vm.ID, vm.Arrive, vm.Depart)
			}
		}
		touched := mem * vm.MaxMemFrac
		if placedSrv.ix != nil {
			placedSrv.ix.detach(placedSrv)
		}
		placedSrv.coresFree -= cores
		placedSrv.memFree -= mem
		placedSrv.vms++
		placedSrv.maxMemTouched += touched
		if placedSrv.ix != nil {
			placedSrv.ix.attach(placedSrv)
		}
		if chk != nil {
			auditServerBounds(chk, placedSrv, "place")
		}
		if testObserve != nil {
			testObserve(vm.ID, placedGreen, placedSrv.id)
		}
		depPush(&deps, departure{at: vm.Depart, srv: placedSrv, cores: cores, mem: mem, touched: touched})
		res.Placed++
		if vm.Deferrable {
			res.DeferrablePlaced++
		}
	}
	// Keep snapshotting through the tail of the trace, then take a
	// final observation at the horizon.
	for nextSnap <= tr.Horizon {
		release(nextSnap)
		baseAgg.observe(baseSrvs)
		greenAgg.observe(greenSrvs)
		res.Snapshots++
		nextSnap += snapEvery
	}
	release(tr.Horizon)
	baseAgg.observe(baseSrvs)
	greenAgg.observe(greenSrvs)
	res.Snapshots++

	if chk != nil {
		// Conservation: once every VM has departed (some depart after
		// the horizon, so drain the heap completely), every server must
		// be exactly full-capacity free again. Any drift means a
		// placement and its release did not move the same resources.
		release(math.Inf(1))
		auditConservation(chk, baseSrvs)
		auditConservation(chk, greenSrvs)
		// The index saw every mutation; verify it still mirrors the
		// pools structurally (treap order, augmented maxima, segment
		// maxima, occupancy classes).
		baseIx.auditIntegrity(chk, "base")
		greenIx.auditIntegrity(chk, "green")
	}

	res.Base = baseAgg.stats()
	res.Green = greenAgg.stats()
	return res, nil
}

// auditServerBounds checks one mutated server's free capacity stays in
// [0, capacity] (within audit.SimTol for accumulated rounding).
func auditServerBounds(chk audit.Checker, s *server, op string) {
	const tol = audit.SimTol
	if s.coresFree < -tol || s.coresFree > float64(s.class.Cores)+tol {
		audit.Failf(chk, "alloc", "core-conservation",
			"%s on %s: free cores %g outside [0, %d]", op, s.class.Name, s.coresFree, s.class.Cores)
	}
	if s.memFree < -tol || s.memFree > float64(s.class.Memory)+tol {
		audit.Failf(chk, "alloc", "memory-conservation",
			"%s on %s: free memory %g outside [0, %g]", op, s.class.Name, s.memFree, float64(s.class.Memory))
	}
	if s.vms < 0 {
		audit.Failf(chk, "alloc", "vm-count", "%s on %s: resident VM count %d < 0", op, s.class.Name, s.vms)
	}
	if s.maxMemTouched < -tol {
		audit.Failf(chk, "alloc", "memory-conservation",
			"%s on %s: touched memory %g < 0", op, s.class.Name, s.maxMemTouched)
	}
}

// auditConservation checks a fully-drained server pool returned to its
// initial state: free capacity equals class capacity and nothing is
// resident.
func auditConservation(chk audit.Checker, servers []*server) {
	for i, s := range servers {
		if !audit.Close(s.coresFree, float64(s.class.Cores), audit.SimTol) {
			audit.Failf(chk, "alloc", "core-conservation",
				"server %d (%s): %g cores free after drain, want %d", i, s.class.Name, s.coresFree, s.class.Cores)
		}
		if !audit.Close(s.memFree, float64(s.class.Memory), audit.SimTol) {
			audit.Failf(chk, "alloc", "memory-conservation",
				"server %d (%s): %g GB free after drain, want %g", i, s.class.Name, s.memFree, float64(s.class.Memory))
		}
		if s.vms != 0 {
			audit.Failf(chk, "alloc", "vm-count",
				"server %d (%s): %d VMs resident after drain", i, s.class.Name, s.vms)
		}
		if !audit.Close(s.maxMemTouched, 0, audit.SimTol) {
			audit.Failf(chk, "alloc", "memory-conservation",
				"server %d (%s): %g GB touched after drain", i, s.class.Name, s.maxMemTouched)
		}
	}
}

// auditRejection verifies a rejection was genuine: no feasible server
// exists for the request. Runs only when auditing is enabled (it scans
// the whole cluster), and when the placement index is live it probes
// the index too — a rejection the index agrees with but the slice
// refutes (or vice versa) is itself a violation.
func auditRejection(chk audit.Checker, vm trace.VM, baseSrvs, greenSrvs []*server, baseIx, greenIx *poolIndex, d Decision, cfg Config) {
	if vm.FullNode {
		// Full-node VMs need an empty baseline server.
		full, fullMem := float64(cfg.Base.Cores), float64(cfg.Base.Memory)
		for _, s := range baseSrvs {
			if s.vms == 0 && s.fits(full, fullMem) {
				audit.Failf(chk, "alloc", "spurious-rejection",
					"full-node VM %d rejected with an empty baseline server available", vm.ID)
				return
			}
		}
		if baseIx != nil && baseIx.firstEmptyFitting(full, fullMem) != nil {
			audit.Failf(chk, "alloc", "index-divergence",
				"full-node VM %d: index reports an empty baseline server the scan does not", vm.ID)
		}
		return
	}
	for _, s := range baseSrvs {
		if s.fits(float64(vm.Cores), float64(vm.Memory)) {
			audit.Failf(chk, "alloc", "spurious-rejection",
				"VM %d (%dc/%gGB) rejected with feasible baseline server", vm.ID, vm.Cores, float64(vm.Memory))
			return
		}
	}
	if baseIx != nil && baseIx.pick(float64(vm.Cores), float64(vm.Memory), cfg.Policy, cfg.PreferNonEmpty) != nil {
		audit.Failf(chk, "alloc", "index-divergence",
			"VM %d: baseline index reports a feasible server the scan does not", vm.ID)
	}
	if d.Adopt && cfg.NGreen > 0 {
		scaledCores := float64(vm.Cores) * d.Scale
		scaledMem := float64(vm.Memory) * d.Scale
		for _, s := range greenSrvs {
			if s.fits(scaledCores, scaledMem) {
				audit.Failf(chk, "alloc", "spurious-rejection",
					"adopting VM %d (%gc/%gGB scaled) rejected with feasible green server", vm.ID, scaledCores, scaledMem)
				return
			}
		}
		if greenIx != nil && greenIx.pick(scaledCores, scaledMem, cfg.Policy, cfg.PreferNonEmpty) != nil {
			audit.Failf(chk, "alloc", "index-divergence",
				"adopting VM %d: green index reports a feasible server the scan does not", vm.ID)
		}
	}
}

// auditFullNodePick cross-checks the index's full-node selection (the
// lowest-indexed empty server that fits a whole baseline node) against
// the reference scan.
func auditFullNodePick(chk audit.Checker, baseSrvs []*server, got *server, full, fullMem float64) {
	var want *server
	for _, s := range baseSrvs {
		if s.vms == 0 && s.fits(full, fullMem) {
			want = s
			break
		}
	}
	if got != want {
		audit.Failf(chk, "alloc", "index-divergence",
			"full-node pick: index chose server %d, scan chose %d", srvID(got), srvID(want))
	}
}

// pickFrom selects a feasible server from one pool: through the
// placement index when it is live, by reference scan otherwise. With
// auditing on, every indexed decision is re-derived by the scan and
// any disagreement is reported — the index's runtime equivalence
// guarantee.
func pickFrom(chk audit.Checker, ix *poolIndex, servers []*server, cores, mem float64, cfg Config) *server {
	if ix == nil {
		return pick(servers, cores, mem, cfg)
	}
	s := ix.pick(cores, mem, cfg.Policy, cfg.PreferNonEmpty)
	if chk != nil {
		if ref := pick(servers, cores, mem, cfg); ref != s {
			audit.Failf(chk, "alloc", "index-divergence",
				"pick(%gc/%gGB, %v, preferNonEmpty=%v): index chose server %d, scan chose %d",
				cores, mem, cfg.Policy, cfg.PreferNonEmpty, srvID(s), srvID(ref))
		}
	}
	return s
}

// srvID renders a possibly-nil server's pool index for audit messages.
func srvID(s *server) int32 {
	if s == nil {
		return -1
	}
	return s.id
}

func makeServers(class *ServerClass, n int) []*server {
	out := make([]*server, n)
	for i := range out {
		out[i] = &server{
			class:     class,
			coresFree: float64(class.Cores),
			memFree:   float64(class.Memory),
			id:        int32(i),
		}
	}
	return out
}

// testIgnoreCapacity, when true, makes pick skip the feasibility
// check — a deliberately broken allocator. It exists only so tests can
// prove the audit layer catches oversubscription; never set it outside
// a test. It also forces the reference-scan path: the index cannot
// express "ignore feasibility".
var testIgnoreCapacity bool

// testObserve, when non-nil, receives every successful placement
// (VM ID, pool, server index) in decision order. The differential
// suite uses it to compare the indexed and reference allocators'
// placement sequences, not just their aggregate Results. Never set it
// outside a test.
var testObserve func(vmID int, green bool, serverID int32)

// pick selects a feasible server under the configured policy by
// linear scan — the reference implementation the placement index
// (index.go) must match decision-for-decision. It stays the active
// path when Config.ReferenceScan is set and defines the semantics the
// differential and audit layers verify the index against.
func pick(servers []*server, cores, mem float64, cfg Config) *server {
	var best *server
	bestNonEmpty := false
	better := func(cand *server, candNonEmpty bool) bool {
		if best == nil {
			return true
		}
		if cfg.PreferNonEmpty && candNonEmpty != bestNonEmpty {
			return candNonEmpty
		}
		switch cfg.Policy {
		case BestFit:
			if cand.coresFree != best.coresFree {
				return cand.coresFree < best.coresFree
			}
			return cand.memFree < best.memFree
		case WorstFit:
			if cand.coresFree != best.coresFree {
				return cand.coresFree > best.coresFree
			}
			// Symmetric with BestFit's two-level break: on equal free
			// cores, prefer the server with more free memory.
			return cand.memFree > best.memFree
		default: // FirstFit: earlier index wins; iteration order handles it
			return false
		}
	}
	for _, s := range servers {
		if !s.fits(cores, mem) && !testIgnoreCapacity {
			continue
		}
		nonEmpty := s.vms > 0
		if better(s, nonEmpty) {
			best = s
			bestNonEmpty = nonEmpty
		}
	}
	return best
}

// aggregator accumulates snapshot observations for one class as
// running sums — O(1) memory however many snapshots a replay takes,
// and flat enough that the simulator checkpoint codec (snapshot.go)
// can carry it verbatim. Each sum accumulates in exactly the order the
// old per-snapshot slices were appended and summed, so the reported
// means are bit-identical to the slice implementation's.
type aggregator struct {
	corePackSum, memPackSum float64
	packObs                 int
	maxMemUtilSum           float64
	cxlFracSum              float64
	cxlObs                  int
	localFits, observed     int
}

func newAggregator() *aggregator { return &aggregator{} }

// observeServer folds one non-empty server's snapshot observation into
// the per-server sums. Both layouts funnel through it: the struct path
// passes the server's fields, the columnar path its column entries.
func (a *aggregator) observeServer(class *ServerClass, maxMemTouched float64) {
	util := maxMemTouched / float64(class.Memory)
	a.maxMemUtilSum += util
	local := float64(class.LocalMemory)
	if local <= 0 || local > float64(class.Memory) {
		local = float64(class.Memory)
	}
	over := maxMemTouched - local
	if over < 0 {
		over = 0
		a.localFits++
	}
	a.observed++
	if maxMemTouched > 0 {
		a.cxlFracSum += over / maxMemTouched
		a.cxlObs++
	}
}

// observePacking folds one snapshot's pool-wide packing densities in.
func (a *aggregator) observePacking(allocC, capC, allocM, capM float64) {
	if capC > 0 {
		a.corePackSum += allocC / capC
		a.memPackSum += allocM / capM
		a.packObs++
	}
}

func (a *aggregator) observe(servers []*server) {
	if len(servers) == 0 {
		return
	}
	var allocC, capC, allocM, capM float64
	for _, s := range servers {
		if s.vms == 0 {
			continue
		}
		allocC += float64(s.class.Cores) - s.coresFree
		capC += float64(s.class.Cores)
		allocM += float64(s.class.Memory) - s.memFree
		capM += float64(s.class.Memory)
		a.observeServer(s.class, s.maxMemTouched)
	}
	a.observePacking(allocC, capC, allocM, capM)
}

func (a *aggregator) stats() ClassStats {
	var cs ClassStats
	cs.CorePacking = meanOf(a.corePackSum, a.packObs)
	cs.MemPacking = meanOf(a.memPackSum, a.packObs)
	cs.MaxMemUtil = meanOf(a.maxMemUtilSum, a.observed)
	cs.CXLServedFrac = meanOf(a.cxlFracSum, a.cxlObs)
	if a.observed > 0 {
		cs.LocalFitsFrac = float64(a.localFits) / float64(a.observed)
	}
	return cs
}

// meanOf is sum/n with the empty-sample convention (NaN) the
// per-snapshot slices had.
func meanOf(sum float64, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// ClassOf derives a ServerClass from SKU capacities.
func ClassOf(name string, cores int, memory, localMemory units.GB, green bool) ServerClass {
	return ServerClass{Name: name, Cores: cores, Memory: memory, LocalMemory: localMemory, Green: green}
}
