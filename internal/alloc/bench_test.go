package alloc

import (
	"testing"

	"github.com/greensku/gsf/internal/trace"
)

func benchTrace(b *testing.B) trace.Trace {
	b.Helper()
	p := trace.DefaultParams("bench", 31)
	p.HorizonHours = 24 * 7
	tr, err := trace.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkSimulateBestFit(b *testing.B) {
	tr := benchTrace(b)
	cfg := Config{
		Base:   ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768},
		NBase:  60,
		Green:  ServerClass{Name: "green", Cores: 128, Memory: 1024, LocalMemory: 768, Green: true},
		NGreen: 30, Policy: BestFit, PreferNonEmpty: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg, AdoptAll); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.VMs)), "vms/run")
}

func BenchmarkSimulatePolicies(b *testing.B) {
	tr := benchTrace(b)
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := Config{
				Base:  ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768},
				NBase: 90, Policy: pol, PreferNonEmpty: true,
			}
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(tr, cfg, AdoptNone); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
