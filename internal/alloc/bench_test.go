package alloc

import (
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/trace"
)

func benchTrace(b *testing.B) trace.Trace {
	b.Helper()
	p := trace.DefaultParams("bench", 31)
	p.HorizonHours = 24 * 7
	tr, err := trace.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkSimulateBestFit(b *testing.B) {
	tr := benchTrace(b)
	cfg := Config{
		Base:   ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768},
		NBase:  60,
		Green:  ServerClass{Name: "green", Cores: 128, Memory: 1024, LocalMemory: 768, Green: true},
		NGreen: 30, Policy: BestFit, PreferNonEmpty: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, cfg, AdoptAll); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.VMs)), "vms/run")
}

func BenchmarkSimulatePolicies(b *testing.B) {
	tr := benchTrace(b)
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := Config{
				Base:  ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768},
				NBase: 90, Policy: pol, PreferNonEmpty: true,
			}
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(tr, cfg, AdoptNone); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulateIndexedVsReference compares the placement index
// against the reference scan on the same trace and cluster at a size
// where the scan's O(servers)-per-placement cost dominates. Run with
// -benchmem: the indexed path's per-run allocations must not grow with
// placements (pool construction only).
func BenchmarkSimulateIndexedVsReference(b *testing.B) {
	tr := benchTrace(b)
	// The package's TestMain installs a default audit Recorder, under
	// which every indexed pick is re-derived by the reference scan —
	// honest for tests, meaningless for timing. Suspend it here.
	prev := audit.Default()
	audit.SetDefault(nil)
	b.Cleanup(func() { audit.SetDefault(prev) })
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		for _, ref := range []bool{false, true} {
			name := pol.String() + "/indexed"
			if ref {
				name = pol.String() + "/reference"
			}
			b.Run(name, func(b *testing.B) {
				cfg := Config{
					Base:   ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768},
					NBase:  4000,
					Green:  ServerClass{Name: "green", Cores: 128, Memory: 1024, LocalMemory: 768, Green: true},
					NGreen: 4000, Policy: pol, PreferNonEmpty: true,
					ReferenceScan: ref,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Simulate(tr, cfg, AdoptAll); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
