package alloc

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/trace"
)

func baseClass() ServerClass {
	return ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768}
}

func greenClass() ServerClass {
	return ServerClass{Name: "green", Cores: 128, Memory: 1024, LocalMemory: 768, Green: true}
}

func smallTrace() trace.Trace {
	return trace.Trace{Name: "small", Horizon: 100, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 50, Cores: 8, Memory: 32, Gen: 3, MaxMemFrac: 0.5, App: "Redis"},
		{ID: 1, Arrive: 2, Depart: 60, Cores: 16, Memory: 64, Gen: 3, MaxMemFrac: 0.5, App: "Redis"},
		{ID: 2, Arrive: 3, Depart: 70, Cores: 8, Memory: 32, Gen: 2, MaxMemFrac: 0.4, App: "Nginx"},
	}}
}

func TestPlacesAll(t *testing.T) {
	res, err := Simulate(smallTrace(), Config{Base: baseClass(), NBase: 2}, AdoptNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 3 || res.Rejected != 0 {
		t.Fatalf("placed/rejected = %d/%d, want 3/0", res.Placed, res.Rejected)
	}
}

func TestRejectsWhenFull(t *testing.T) {
	tr := trace.Trace{Name: "over", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 60, Memory: 240, Gen: 3, MaxMemFrac: 0.5},
		{ID: 1, Arrive: 2, Depart: 9, Cores: 60, Memory: 240, Gen: 3, MaxMemFrac: 0.5},
	}}
	res, err := Simulate(tr, Config{Base: baseClass(), NBase: 1}, AdoptNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", res.Rejected)
	}
}

func TestDeparturesFreeCapacity(t *testing.T) {
	tr := trace.Trace{Name: "seq", Horizon: 100, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 5, Cores: 60, Memory: 240, Gen: 3, MaxMemFrac: 0.5},
		{ID: 1, Arrive: 6, Depart: 9, Cores: 60, Memory: 240, Gen: 3, MaxMemFrac: 0.5},
	}}
	res, err := Simulate(tr, Config{Base: baseClass(), NBase: 1}, AdoptNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0 (first VM departed)", res.Rejected)
	}
}

func TestBestFitConsolidates(t *testing.T) {
	// Two servers, one half-loaded: best-fit with prefer-non-empty
	// should put the next VM on the loaded server.
	tr := trace.Trace{Name: "bf", Horizon: 100, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 90, Cores: 40, Memory: 160, Gen: 3, MaxMemFrac: 0.5},
		{ID: 1, Arrive: 2, Depart: 90, Cores: 8, Memory: 32, Gen: 3, MaxMemFrac: 0.5},
	}}
	res, err := Simulate(tr, Config{Base: baseClass(), NBase: 2, Policy: BestFit, PreferNonEmpty: true, SnapshotEvery: 1}, AdoptNone)
	if err != nil {
		t.Fatal(err)
	}
	// Non-empty packing density should reflect a single server holding
	// 48/80 cores, not two servers at lower density.
	if math.Abs(res.Base.CorePacking-0.6) > 0.02 {
		t.Fatalf("core packing = %v, want ~0.6 (consolidated)", res.Base.CorePacking)
	}
}

func TestWorstFitSpreads(t *testing.T) {
	tr := trace.Trace{Name: "wf", Horizon: 100, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 90, Cores: 8, Memory: 32, Gen: 3, MaxMemFrac: 0.5},
		{ID: 1, Arrive: 2, Depart: 90, Cores: 8, Memory: 32, Gen: 3, MaxMemFrac: 0.5},
	}}
	res, err := Simulate(tr, Config{Base: baseClass(), NBase: 2, Policy: WorstFit, SnapshotEvery: 1}, AdoptNone)
	if err != nil {
		t.Fatal(err)
	}
	// Spread across both servers: each non-empty at 8/80.
	if math.Abs(res.Base.CorePacking-0.1) > 0.02 {
		t.Fatalf("core packing = %v, want ~0.1 (spread)", res.Base.CorePacking)
	}
}

func TestAdoptersPreferGreen(t *testing.T) {
	res, err := Simulate(smallTrace(), Config{
		Base: baseClass(), NBase: 1,
		Green: greenClass(), NGreen: 1,
		SnapshotEvery: 1,
	}, AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0", res.Rejected)
	}
	// All VMs adopt: green servers hold everything; base stays empty
	// (NaN packing since never non-empty).
	if !math.IsNaN(res.Base.CorePacking) {
		t.Fatalf("baseline packing = %v, want NaN (never used)", res.Base.CorePacking)
	}
	if res.Green.CorePacking <= 0 {
		t.Fatalf("green packing = %v, want positive", res.Green.CorePacking)
	}
}

func TestScalingInflatesGreenRequests(t *testing.T) {
	// A 64-core VM scaled 1.5x needs 96 cores: fits a 128-core green
	// server, and consumes measurably more of it.
	tr := trace.Trace{Name: "scale", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 64, Memory: 256, Gen: 3, MaxMemFrac: 0.5},
	}}
	scaled := func(trace.VM) Decision { return Decision{Adopt: true, Scale: 1.5} }
	res, err := Simulate(tr, Config{Base: baseClass(), NBase: 1, Green: greenClass(), NGreen: 1, SnapshotEvery: 1}, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Green.CorePacking-96.0/128) > 0.02 {
		t.Fatalf("green core packing = %v, want 0.75 (96/128)", res.Green.CorePacking)
	}
}

func TestFullNodePinsToBaseline(t *testing.T) {
	tr := trace.Trace{Name: "fn", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 80, Memory: 768, Gen: 3, FullNode: true, MaxMemFrac: 0.5},
	}}
	res, err := Simulate(tr, Config{Base: baseClass(), NBase: 1, Green: greenClass(), NGreen: 1, SnapshotEvery: 1}, AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatal("full-node VM rejected despite empty baseline server")
	}
	if math.Abs(res.Base.CorePacking-1.0) > 1e-9 {
		t.Fatalf("baseline packing = %v, want 1.0 (dedicated)", res.Base.CorePacking)
	}
	if !math.IsNaN(res.Green.CorePacking) {
		t.Fatal("full-node VM must not land on a GreenSKU")
	}
}

func TestFullNodeNeedsEmptyServer(t *testing.T) {
	tr := trace.Trace{Name: "fn2", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 2, Memory: 8, Gen: 3, MaxMemFrac: 0.5},
		{ID: 1, Arrive: 2, Depart: 9, Cores: 80, Memory: 768, Gen: 3, FullNode: true, MaxMemFrac: 0.5},
	}}
	res, err := Simulate(tr, Config{Base: baseClass(), NBase: 1}, AdoptNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1 (no empty server for full-node VM)", res.Rejected)
	}
}

func TestCXLAccounting(t *testing.T) {
	// Green server: 1024 GB total, 768 local. A VM touching 900 GB
	// spills 132 GB onto CXL.
	tr := trace.Trace{Name: "cxl", Horizon: 10, VMs: []trace.VM{
		{ID: 0, Arrive: 1, Depart: 9, Cores: 64, Memory: 1000, Gen: 3, MaxMemFrac: 0.9},
	}}
	res, err := Simulate(tr, Config{Green: greenClass(), NGreen: 1, Base: baseClass(), NBase: 1, SnapshotEvery: 1}, AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	wantUtil := 900.0 / 1024
	if math.Abs(res.Green.MaxMemUtil-wantUtil) > 0.01 {
		t.Fatalf("green max-mem util = %v, want %v", res.Green.MaxMemUtil, wantUtil)
	}
	wantCXL := (900.0 - 768) / 900
	if math.Abs(res.Green.CXLServedFrac-wantCXL) > 0.01 {
		t.Fatalf("CXL-served fraction = %v, want %v", res.Green.CXLServedFrac, wantCXL)
	}
	if res.Green.LocalFitsFrac != 0 {
		t.Fatalf("LocalFitsFrac = %v, want 0 (touched memory exceeds local)", res.Green.LocalFitsFrac)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := smallTrace()
	if _, err := Simulate(tr, Config{}, AdoptNone); err == nil {
		t.Error("Simulate accepted an empty cluster")
	}
	if _, err := Simulate(tr, Config{NBase: 1}, AdoptNone); err == nil {
		t.Error("Simulate accepted a zero-capacity class")
	}
	bad := trace.Trace{VMs: []trace.VM{{Arrive: 2, Depart: 1, Cores: 1, Memory: 1, Gen: 1}}}
	if _, err := Simulate(bad, Config{Base: baseClass(), NBase: 1}, AdoptNone); err == nil {
		t.Error("Simulate accepted an invalid trace")
	}
}

func TestGeneratedTraceRuns(t *testing.T) {
	p := trace.DefaultParams("sim", 77)
	p.HorizonHours = 24 * 3
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, Config{
		Base: baseClass(), NBase: 40,
		Green: greenClass(), NGreen: 10,
		Policy: BestFit, PreferNonEmpty: true,
	}, AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 || res.Snapshots == 0 {
		t.Fatalf("nothing simulated: %+v", res)
	}
	if res.Green.CorePacking <= 0 || res.Green.CorePacking > 1 {
		t.Fatalf("green packing out of range: %v", res.Green.CorePacking)
	}
}

func TestPolicyString(t *testing.T) {
	if BestFit.String() != "best-fit" || Policy(9).String() != "policy(9)" {
		t.Error("unexpected policy names")
	}
}
