package alloc

// Differential equivalence suite: the placement index (index.go) must
// be decision-identical to the reference linear scan. These tests run
// the full 35-trace production suite under every policy with
// PreferNonEmpty on and off, once through each allocator, and demand
// bit-identical Results and identical per-VM placement sequences. The
// package's TestMain wraps everything in audit.SweepMain, so every
// indexed pick here is additionally cross-checked against the scan by
// the audit layer (alloc/index-divergence) as it happens.

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/trace"
)

// diffDecider adopts most VMs with a fractional scaling factor, so the
// differential runs exercise both pools and non-integral free-capacity
// values (the case that rules out integer-granular bucketing).
func diffDecider(vm trace.VM) Decision {
	return Decision{
		Adopt: vm.ID%10 < 7,
		Scale: 1 + 0.1*float64(vm.ID%3),
	}
}

// placeRec is one observed placement, captured via testObserve.
type placeRec struct {
	vmID  int
	green bool
	srv   int32
}

// runObserved simulates one trace and returns the Result plus the
// exact placement sequence.
func runObserved(t *testing.T, tr trace.Trace, cfg Config) (Result, []placeRec) {
	t.Helper()
	var seq []placeRec
	testObserve = func(vmID int, green bool, serverID int32) {
		seq = append(seq, placeRec{vmID, green, serverID})
	}
	defer func() { testObserve = nil }()
	res, err := Simulate(tr, cfg, diffDecider)
	if err != nil {
		t.Fatalf("%s (%v, preferNonEmpty=%v, refScan=%v): %v",
			tr.Name, cfg.Policy, cfg.PreferNonEmpty, cfg.ReferenceScan, err)
	}
	return res, seq
}

// sameBits reports whether two floats are the same bit pattern — the
// "byte-identical" comparison; NaN equals NaN, and -0 differs from +0.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameClassStats(a, b ClassStats) bool {
	return sameBits(a.CorePacking, b.CorePacking) &&
		sameBits(a.MemPacking, b.MemPacking) &&
		sameBits(a.MaxMemUtil, b.MaxMemUtil) &&
		sameBits(a.CXLServedFrac, b.CXLServedFrac) &&
		sameBits(a.LocalFitsFrac, b.LocalFitsFrac)
}

func sameResult(a, b Result) bool {
	return a.Placed == b.Placed && a.Rejected == b.Rejected &&
		a.DeferrablePlaced == b.DeferrablePlaced &&
		a.DeferrableRejected == b.DeferrableRejected &&
		a.Snapshots == b.Snapshots &&
		sameClassStats(a.Base, b.Base) && sameClassStats(a.Green, b.Green)
}

// TestDifferentialIndexedVsScan35Traces replays the whole production
// suite under all 3 policies x PreferNonEmpty on/off, through the
// indexed and reference allocators, and asserts byte-identical Results
// and identical placement sequences. The cluster is sized so every
// trace produces both placements and rejections.
func TestDifferentialIndexedVsScan35Traces(t *testing.T) {
	if testing.Short() {
		t.Skip("full 35-trace differential sweep")
	}
	traces, err := trace.ProductionSuite()
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{BestFit, FirstFit, WorstFit}
	totalPlaced, totalRejected := 0, 0
	for _, pol := range policies {
		for _, prefer := range []bool{false, true} {
			cfg := Config{
				Base:           baseClass(),
				NBase:          40,
				Green:          greenClass(),
				NGreen:         40,
				Policy:         pol,
				PreferNonEmpty: prefer,
			}
			for _, tr := range traces {
				ref := cfg
				ref.ReferenceScan = true
				wantRes, wantSeq := runObserved(t, tr, ref)
				gotRes, gotSeq := runObserved(t, tr, cfg)

				if !sameResult(gotRes, wantRes) {
					t.Errorf("%s (%v, preferNonEmpty=%v): indexed Result %+v != reference %+v",
						tr.Name, pol, prefer, gotRes, wantRes)
				}
				if len(gotSeq) != len(wantSeq) {
					t.Errorf("%s (%v, preferNonEmpty=%v): %d indexed placements vs %d reference",
						tr.Name, pol, prefer, len(gotSeq), len(wantSeq))
					continue
				}
				for i := range gotSeq {
					if gotSeq[i] != wantSeq[i] {
						t.Errorf("%s (%v, preferNonEmpty=%v): placement %d diverges: indexed %+v, reference %+v",
							tr.Name, pol, prefer, i, gotSeq[i], wantSeq[i])
						break
					}
				}
				totalPlaced += gotRes.Placed
				totalRejected += gotRes.Rejected
			}
		}
	}
	// The sweep must have exercised both outcomes, or the identity
	// proof is vacuous on one side.
	if totalPlaced == 0 || totalRejected == 0 {
		t.Fatalf("differential sweep is degenerate: %d placed, %d rejected", totalPlaced, totalRejected)
	}
}

// TestDifferentialMultiPool covers the multi-pool simulator the same
// way on a subset of the suite: its full-node rule (first empty server
// regardless of capacity) and per-pool scaled directives go through
// different index queries than the single-green path.
func TestDifferentialMultiPool(t *testing.T) {
	traces, err := trace.ProductionSuite()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		traces = traces[:3]
	} else {
		traces = traces[:8]
	}
	decide := func(vm trace.VM) MultiDecision {
		switch vm.ID % 4 {
		case 0:
			return MultiDecision{Scales: []float64{1.2, 0}}
		case 1:
			return MultiDecision{Scales: []float64{0, 1}}
		case 2:
			return MultiDecision{Scales: []float64{1, 1.5}}
		}
		return MultiDecision{}
	}
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		mc := MultiConfig{
			Base:           Pool{Class: baseClass(), N: 30},
			Greens:         []Pool{{Class: greenClass(), N: 20}, {Class: baseClass(), N: 10}},
			Policy:         pol,
			PreferNonEmpty: pol != FirstFit,
		}
		for _, tr := range traces {
			ref := mc
			ref.ReferenceScan = true
			want, err := SimulateMulti(tr, ref, decide)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SimulateMulti(tr, mc, decide)
			if err != nil {
				t.Fatal(err)
			}
			if got.Placed != want.Placed || got.Rejected != want.Rejected ||
				got.Snapshots != want.Snapshots ||
				!sameClassStats(got.Base, want.Base) ||
				len(got.Green) != len(want.Green) {
				t.Fatalf("%s (%v): indexed multi result %+v != reference %+v", tr.Name, pol, got, want)
			}
			for i := range got.Green {
				if !sameClassStats(got.Green[i], want.Green[i]) {
					t.Fatalf("%s (%v): green pool %d stats diverge: %+v vs %+v",
						tr.Name, pol, i, got.Green[i], want.Green[i])
				}
			}
		}
	}
}
