package alloc

// Steady-state allocation regressions: once a simulation's pools and
// index are built, placing and releasing VMs must not touch the heap.
// The index's treaps and segment tree are slice-backed and fixed-size,
// and the departure heap reuses its backing array, so the simulator's
// per-VM cost is pure CPU. testing.AllocsPerRun pins that at zero.

import "testing"

func TestIndexedPickZeroAllocs(t *testing.T) {
	class := ServerClass{Name: "steady", Cores: 32, Memory: 256, LocalMemory: 256}
	servers := makeServers(&class, 1024)
	ix := newPoolIndex(servers)
	// Mixed occupancy so queries traverse both treaps.
	for i := 0; i < len(servers); i += 3 {
		place(servers[i], 4, 32)
	}
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		avg := testing.AllocsPerRun(200, func() {
			s := ix.pick(4, 32, pol, true)
			if s == nil {
				t.Fatal("no feasible server in a near-empty pool")
			}
			place(s, 4, 32)
			unplace(s, 4, 32)
		})
		if avg != 0 {
			t.Errorf("indexed pick+place+release under %v allocates %.1f times per op, want 0", pol, avg)
		}
	}
}

func TestDepartureHeapZeroAllocs(t *testing.T) {
	var h depHeap
	// One warm cycle establishes the backing array's capacity.
	for i := 0; i < 128; i++ {
		depPush(&h, departure{at: float64((i * 37) % 128)})
	}
	for len(h) > 0 {
		depPop(&h)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			depPush(&h, departure{at: float64((i * 53) % 128)})
		}
		for len(h) > 0 {
			if d := depPop(&h); d.at < 0 {
				t.Fatal("negative departure time")
			}
		}
	})
	if avg != 0 {
		t.Errorf("departure heap churn allocates %.1f times per cycle, want 0", avg)
	}
}

// TestDepartureHeapOrdering pins the typed heap to container/heap
// semantics: pops come out in non-decreasing time order regardless of
// push order.
func TestDepartureHeapOrdering(t *testing.T) {
	var h depHeap
	times := []float64{5, 1, 9, 1, 7, 3, 3, 8, 0, 2, 6, 4}
	for _, at := range times {
		depPush(&h, departure{at: at})
	}
	prev := -1.0
	for len(h) > 0 {
		d := depPop(&h)
		if d.at < prev {
			t.Fatalf("heap popped %g after %g", d.at, prev)
		}
		prev = d.at
	}
}
