package alloc

// The placement index: the allocation simulator's fast path. The
// reference allocator (pick in alloc.go) scans every server of a pool
// per placement, making a sweep O(VMs x servers); production
// allocators index their candidate sets instead (Protean). This index
// answers every policy query in O(log S) and absorbs a place or
// release in O(log S), while remaining decision-identical to the scan
// — the differential, property, and fuzz suites prove it, and the
// audit layer cross-checks it on every audited placement.
//
// Two structures per pool, both keyed on exact float64 free capacity
// (scaled requests make free cores fractional, and place/release pairs
// leave sub-SimTol float drift, so integer-granular buckets would not
// reproduce the scan's comparisons bit-for-bit):
//
//   - A treap per occupancy class (non-empty / empty) ordered by
//     (coresFree, memFree, id), augmented with the subtree maximum of
//     memFree. BestFit is the leftmost feasible key (least cores, then
//     least memory, then first index — the scan's exact order);
//     WorstFit is the rightmost feasible key re-anchored to the first
//     index of its (cores, mem) tie group. The occupancy split makes
//     PreferNonEmpty a query on one root with fallback to the other.
//   - A segment tree over server indices holding per-class maxima of
//     (coresFree, memFree) plus a count of empty servers. FirstFit is
//     the leftmost feasible leaf; full-node placement is the leftmost
//     feasible (or, for multi-pool, leftmost unconditional) empty leaf.
//
// The index is split in two layers. ixCore is the pure structure: it
// knows servers only as ids with (coresFree, memFree, occupancy)
// keys, so both server representations share it — poolIndex wraps it
// over the materialized *server structs, and the columnar fleet
// (colsim.go) attaches ids straight from its parallel arrays, growing
// the core as its touched frontier advances. Every structure is
// backed by slices; steady-state operations perform zero heap
// allocations (pinned by TestIndexedPickZeroAllocs).

import (
	"math"

	"github.com/greensku/gsf/internal/audit"
)

const nilNode = int32(-1)

var negInf = math.Inf(-1)

// treapNode is one server's node in its pool's occupancy treap. The
// key (cores, mem, id) is a copy of the server's free capacity, kept
// exact by detaching before and re-attaching after every mutation.
type treapNode struct {
	left, right int32
	prio        uint32
	cores, mem  float64
	// maxMem is the maximum mem over the node's subtree, the pruning
	// bound for feasibility (memFree >= request) searches.
	maxMem float64
	// ne records which occupancy treap currently holds the node.
	ne bool
}

// segNode aggregates a range of server indices: per-occupancy-class
// maxima of free capacity (negInf when the class is absent) and the
// count of empty servers.
type segNode struct {
	coresNE, memNE float64
	coresE, memE   float64
	cntE           int32
}

// emptySeg is the identity element of the segment-tree combine.
var emptySeg = segNode{coresNE: negInf, memNE: negInf, coresE: negInf, memE: negInf}

// ixCore indexes a pool of server ids for O(log S) placement. It holds
// no server representation of its own: callers attach and detach ids
// with explicit (cores, mem, occupancy) keys. Capacity grows on
// demand (grow), so a sparse pool — the columnar fleet's touched
// prefix — pays only for the ids it has materialized.
type ixCore struct {
	nodes   []treapNode
	rootNE  int32
	rootE   int32
	seg     []segNode
	segSize int32
}

// prioOf derives a fixed, deterministic treap priority from a server
// index (splitmix64 finalizer), so tree shapes are reproducible.
func prioOf(id int32) uint32 {
	z := uint64(id)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32(z ^ (z >> 31))
}

// initCore readies the core for exactly n ids.
func (ix *ixCore) initCore(n int) {
	segSize := int32(1)
	for int(segSize) < n {
		segSize <<= 1
	}
	ix.nodes = make([]treapNode, n)
	for i := range ix.nodes {
		ix.nodes[i].prio = prioOf(int32(i))
	}
	ix.rootNE, ix.rootE = nilNode, nilNode
	ix.seg = make([]segNode, 2*segSize)
	for i := range ix.seg {
		ix.seg[i] = emptySeg
	}
	ix.segSize = segSize
}

// grow extends the core to hold ids [0, n). Node slots append in
// amortized O(1); when n outgrows the segment tree, the tree doubles
// and rebuilds in O(n) — amortized O(1) per added id. Detached (never
// attached) slots are inert: their leaves stay at the identity and
// their treap nodes are untracked.
func (ix *ixCore) grow(n int32) {
	for int32(len(ix.nodes)) < n {
		ix.nodes = append(ix.nodes, treapNode{prio: prioOf(int32(len(ix.nodes)))})
	}
	if n <= ix.segSize {
		return
	}
	newSize := ix.segSize
	if newSize == 0 {
		newSize = 1
		ix.rootNE, ix.rootE = nilNode, nilNode
	}
	for newSize < n {
		newSize <<= 1
	}
	old := ix.seg
	oldSize := ix.segSize
	ix.seg = make([]segNode, 2*newSize)
	for i := range ix.seg {
		ix.seg[i] = emptySeg
	}
	if oldSize > 0 {
		copy(ix.seg[newSize:], old[oldSize:])
	}
	for i := newSize - 1; i >= 1; i-- {
		ix.seg[i] = combineSeg(&ix.seg[2*i], &ix.seg[2*i+1])
	}
	ix.segSize = newSize
}

// poolIndex wraps an ixCore over a materialized server pool: the
// original struct-of-pointers representation used by the reference
// layout and the multi-pool simulator.
type poolIndex struct {
	ixCore
	servers []*server
}

// newPoolIndex builds the index over a pool and wires each server to
// it. Returns nil for an empty pool.
func newPoolIndex(servers []*server) *poolIndex {
	n := len(servers)
	if n == 0 {
		return nil
	}
	ix := &poolIndex{servers: servers}
	ix.initCore(n)
	for _, s := range servers {
		s.ix = ix
		ix.attach(s)
	}
	return ix
}

// keyLess orders nodes by (cores, mem, id) ascending — exactly the
// scan's BestFit preference order, with first-index tie-breaking.
func (ix *ixCore) keyLess(a, b int32) bool {
	na, nb := &ix.nodes[a], &ix.nodes[b]
	if na.cores != nb.cores {
		return na.cores < nb.cores
	}
	if na.mem != nb.mem {
		return na.mem < nb.mem
	}
	return a < b
}

// pull recomputes a node's subtree maxMem from its children.
func (ix *ixCore) pull(n int32) {
	nd := &ix.nodes[n]
	mm := nd.mem
	if nd.left != nilNode {
		if lm := ix.nodes[nd.left].maxMem; lm > mm {
			mm = lm
		}
	}
	if nd.right != nilNode {
		if rm := ix.nodes[nd.right].maxMem; rm > mm {
			mm = rm
		}
	}
	nd.maxMem = mm
}

func (ix *ixCore) rotateRight(n int32) int32 {
	l := ix.nodes[n].left
	ix.nodes[n].left = ix.nodes[l].right
	ix.nodes[l].right = n
	ix.pull(n)
	ix.pull(l)
	return l
}

func (ix *ixCore) rotateLeft(n int32) int32 {
	r := ix.nodes[n].right
	ix.nodes[n].right = ix.nodes[r].left
	ix.nodes[r].left = n
	ix.pull(n)
	ix.pull(r)
	return r
}

func (ix *ixCore) insertNode(root, n int32) int32 {
	if root == nilNode {
		return n
	}
	rd := &ix.nodes[root]
	if ix.keyLess(n, root) {
		rd.left = ix.insertNode(rd.left, n)
		if ix.nodes[rd.left].prio > rd.prio {
			return ix.rotateRight(root)
		}
	} else {
		rd.right = ix.insertNode(rd.right, n)
		if ix.nodes[rd.right].prio > rd.prio {
			return ix.rotateLeft(root)
		}
	}
	ix.pull(root)
	return root
}

func (ix *ixCore) mergeNodes(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if ix.nodes[a].prio >= ix.nodes[b].prio {
		ix.nodes[a].right = ix.mergeNodes(ix.nodes[a].right, b)
		ix.pull(a)
		return a
	}
	ix.nodes[b].left = ix.mergeNodes(a, ix.nodes[b].left)
	ix.pull(b)
	return b
}

func (ix *ixCore) deleteNode(root, n int32) int32 {
	if root == nilNode {
		panic("alloc: placement index lost track of a server")
	}
	if root == n {
		return ix.mergeNodes(ix.nodes[n].left, ix.nodes[n].right)
	}
	rd := &ix.nodes[root]
	if ix.keyLess(n, root) {
		rd.left = ix.deleteNode(rd.left, n)
	} else {
		rd.right = ix.deleteNode(rd.right, n)
	}
	ix.pull(root)
	return root
}

// detachID removes an id from the index ahead of a mutation of its
// free capacity or occupancy; attachID re-inserts it afterwards.
func (ix *ixCore) detachID(n int32) {
	if ix.nodes[n].ne {
		ix.rootNE = ix.deleteNode(ix.rootNE, n)
	} else {
		ix.rootE = ix.deleteNode(ix.rootE, n)
	}
}

func (ix *ixCore) attachID(n int32, cores, mem float64, ne bool) {
	nd := &ix.nodes[n]
	nd.left, nd.right = nilNode, nilNode
	nd.cores, nd.mem, nd.maxMem = cores, mem, mem
	nd.ne = ne
	if ne {
		ix.rootNE = ix.insertNode(ix.rootNE, n)
	} else {
		ix.rootE = ix.insertNode(ix.rootE, n)
	}
	ix.segSet(n, cores, mem, ne)
}

// detach removes a server from the index ahead of a mutation of its
// free capacity or occupancy; attach re-inserts it afterwards.
func (ix *poolIndex) detach(s *server) { ix.detachID(s.id) }

func (ix *poolIndex) attach(s *server) { ix.attachID(s.id, s.coresFree, s.memFree, s.vms > 0) }

// segSet rewrites an id's segment-tree leaf and bubbles the change to
// the root.
func (ix *ixCore) segSet(id int32, cores, mem float64, ne bool) {
	i := ix.segSize + id
	sn := &ix.seg[i]
	if ne {
		*sn = segNode{coresNE: cores, memNE: mem, coresE: negInf, memE: negInf}
	} else {
		*sn = segNode{coresNE: negInf, memNE: negInf, coresE: cores, memE: mem, cntE: 1}
	}
	for i >>= 1; i >= 1; i >>= 1 {
		ix.seg[i] = combineSeg(&ix.seg[2*i], &ix.seg[2*i+1])
	}
}

func combineSeg(l, r *segNode) segNode {
	return segNode{
		coresNE: fmax(l.coresNE, r.coresNE),
		memNE:   fmax(l.memNE, r.memNE),
		coresE:  fmax(l.coresE, r.coresE),
		memE:    fmax(l.memE, r.memE),
		cntE:    l.cntE + r.cntE,
	}
}

func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// leftmostFeasible returns the node with the smallest (cores, mem, id)
// key among nodes with cores >= c and mem >= m, or nilNode. Keys with
// cores >= c form a suffix of the key order, so the walk tracks the
// suffix boundary and uses maxMem to prune; at most one full downward
// probe succeeds, keeping the query O(log S). All comparisons are
// written positively so non-finite requests (never feasible for the
// scan) are never feasible here either.
func (ix *ixCore) leftmostFeasible(n int32, c, m float64) int32 {
	if n == nilNode {
		return nilNode
	}
	nd := &ix.nodes[n]
	if !(nd.maxMem >= m) {
		return nilNode
	}
	if !(nd.cores >= c) {
		// The node and its whole left subtree sit below the cores cut.
		return ix.leftmostFeasible(nd.right, c, m)
	}
	if r := ix.leftmostFeasible(nd.left, c, m); r != nilNode {
		return r
	}
	if nd.mem >= m {
		return n
	}
	// Everything right of here already satisfies cores >= c.
	return ix.leftmostMem(nd.right, m)
}

// leftmostMem returns the leftmost (key-order) node with mem >= m.
func (ix *ixCore) leftmostMem(n int32, m float64) int32 {
	if n == nilNode || !(ix.nodes[n].maxMem >= m) {
		return nilNode
	}
	nd := &ix.nodes[n]
	if r := ix.leftmostMem(nd.left, m); r != nilNode {
		return r
	}
	if nd.mem >= m {
		return n
	}
	return ix.leftmostMem(nd.right, m)
}

// rightmostMem returns the rightmost (key-order) node with mem >= m.
func (ix *ixCore) rightmostMem(n int32, m float64) int32 {
	if n == nilNode || !(ix.nodes[n].maxMem >= m) {
		return nilNode
	}
	nd := &ix.nodes[n]
	if r := ix.rightmostMem(nd.right, m); r != nilNode {
		return r
	}
	if nd.mem >= m {
		return n
	}
	return ix.rightmostMem(nd.left, m)
}

// lowerBound returns the leftmost node with key >= (c, m, -inf).
func (ix *ixCore) lowerBound(root int32, c, m float64) int32 {
	res := nilNode
	for n := root; n != nilNode; {
		nd := &ix.nodes[n]
		if nd.cores > c || (nd.cores == c && nd.mem >= m) {
			res = n
			n = nd.left
		} else {
			n = nd.right
		}
	}
	return res
}

// worstFeasible returns the feasible node preferred by (fixed)
// WorstFit: most free cores, then most free memory, then first index.
// The rightmost node with mem >= m maximises (cores, mem) over every
// feasible server; re-anchoring to the lower bound of its (cores, mem)
// group recovers the scan's first-index tie-break.
func (ix *ixCore) worstFeasible(root int32, c, m float64) int32 {
	r := ix.rightmostMem(root, m)
	if r == nilNode || !(ix.nodes[r].cores >= c) {
		return nilNode
	}
	return ix.lowerBound(root, ix.nodes[r].cores, ix.nodes[r].mem)
}

// segFirst returns the lowest server index whose free capacity
// dominates (c, m), restricted to the requested occupancy classes, or
// nilNode. Class maxima can over-approximate (the cores and mem maxima
// of a range may come from different servers), so the descent
// backtracks; leaf checks are exact.
func (ix *ixCore) segFirst(i int32, c, m float64, wantNE, wantE bool) int32 {
	sn := &ix.seg[i]
	if !((wantNE && sn.coresNE >= c && sn.memNE >= m) || (wantE && sn.coresE >= c && sn.memE >= m)) {
		return nilNode
	}
	if i >= ix.segSize {
		return i - ix.segSize
	}
	if r := ix.segFirst(2*i, c, m, wantNE, wantE); r != nilNode {
		return r
	}
	return ix.segFirst(2*i+1, c, m, wantNE, wantE)
}

// segFirstEmpty returns the lowest index of an empty server with no
// capacity condition (the multi-pool full-node rule), or nilNode.
func (ix *ixCore) segFirstEmpty() int32 {
	if ix.segSize == 0 || ix.seg[1].cntE == 0 {
		return nilNode
	}
	i := int32(1)
	for i < ix.segSize {
		if ix.seg[2*i].cntE > 0 {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - ix.segSize
}

// pickClass selects the policy-preferred feasible server within one
// occupancy class, or nilNode.
func (ix *ixCore) pickClass(cores, mem float64, pol Policy, nonEmpty bool) int32 {
	root := ix.rootE
	if nonEmpty {
		root = ix.rootNE
	}
	switch pol {
	case BestFit:
		return ix.leftmostFeasible(root, cores, mem)
	case WorstFit:
		return ix.worstFeasible(root, cores, mem)
	default: // FirstFit and unknown policies: earliest index wins.
		if ix.segSize == 0 {
			return nilNode
		}
		return ix.segFirst(1, cores, mem, nonEmpty, !nonEmpty)
	}
}

// pickNode selects the feasible id under the configured policy,
// decision-identically to the reference scan over the attached ids.
func (ix *ixCore) pickNode(cores, mem float64, pol Policy, preferNonEmpty bool) int32 {
	if preferNonEmpty {
		if n := ix.pickClass(cores, mem, pol, true); n != nilNode {
			return n
		}
		return ix.pickClass(cores, mem, pol, false)
	}
	switch pol {
	case BestFit:
		a := ix.leftmostFeasible(ix.rootNE, cores, mem)
		b := ix.leftmostFeasible(ix.rootE, cores, mem)
		return ix.minKey(a, b)
	case WorstFit:
		a := ix.worstFeasible(ix.rootNE, cores, mem)
		b := ix.worstFeasible(ix.rootE, cores, mem)
		return ix.maxKeyFirstIdx(a, b)
	default:
		if ix.segSize == 0 {
			return nilNode
		}
		return ix.segFirst(1, cores, mem, true, true)
	}
}

// firstEmptyFittingNode returns the lowest id of an empty server that
// fits (cores, mem), or nilNode — the single-pool full-node rule.
func (ix *ixCore) firstEmptyFittingNode(cores, mem float64) int32 {
	if ix.segSize == 0 {
		return nilNode
	}
	return ix.segFirst(1, cores, mem, false, true)
}

// pick selects a feasible server under the configured policy,
// decision-identically to the reference scan.
func (ix *poolIndex) pick(cores, mem float64, pol Policy, preferNonEmpty bool) *server {
	if n := ix.pickNode(cores, mem, pol, preferNonEmpty); n != nilNode {
		return ix.servers[n]
	}
	return nil
}

// firstEmptyFitting returns the lowest-indexed empty server that fits
// (cores, mem), or nil — the single-pool full-node rule.
func (ix *poolIndex) firstEmptyFitting(cores, mem float64) *server {
	if n := ix.firstEmptyFittingNode(cores, mem); n != nilNode {
		return ix.servers[n]
	}
	return nil
}

// firstEmpty returns the lowest-indexed empty server regardless of
// capacity, or nil — the multi-pool full-node rule.
func (ix *poolIndex) firstEmpty() *server {
	if n := ix.segFirstEmpty(); n != nilNode {
		return ix.servers[n]
	}
	return nil
}

// minKey combines per-class BestFit winners: smallest (cores, mem, id).
func (ix *ixCore) minKey(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if ix.keyLess(a, b) {
		return a
	}
	return b
}

// maxKeyFirstIdx combines per-class WorstFit winners: largest
// (cores, mem), then smallest index.
func (ix *ixCore) maxKeyFirstIdx(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	na, nb := &ix.nodes[a], &ix.nodes[b]
	if na.cores != nb.cores {
		if na.cores > nb.cores {
			return a
		}
		return b
	}
	if na.mem != nb.mem {
		if na.mem > nb.mem {
			return a
		}
		return b
	}
	if a < b {
		return a
	}
	return b
}

// auditIntegrity walks the whole index and reports any structural
// drift against the live servers to the audit layer. See
// auditIntegrityCore for the checks.
func (ix *poolIndex) auditIntegrity(chk audit.Checker, pool string) {
	if chk == nil || ix == nil {
		return
	}
	ix.auditIntegrityCore(chk, pool, int32(len(ix.servers)), func(id int32) (float64, float64, bool) {
		s := ix.servers[id]
		return s.coresFree, s.memFree, s.vms > 0
	})
}

// auditIntegrityCore walks the whole index and reports any structural
// drift against the live pool state (supplied per id by state) to the
// audit layer: treap ordering and heap shape, augmentation sums,
// occupancy classification, key staleness, segment-tree maxima and
// empty counts, and that every one of the n attached ids is indexed
// exactly once. The conservation audit calls it so audited
// simulations verify the index itself, not just the pool.
func (ix *ixCore) auditIntegrityCore(chk audit.Checker, pool string, n int32, state func(id int32) (cores, mem float64, ne bool)) {
	if chk == nil || ix == nil {
		return
	}
	seen := make([]bool, n)
	count := int32(0)
	var walk func(nd int32, ne bool, prioCap uint32) (lo, hi int32)
	walk = func(node int32, ne bool, prioCap uint32) (int32, int32) {
		nd := &ix.nodes[node]
		if nd.prio > prioCap {
			audit.Failf(chk, "alloc", "index-integrity",
				"%s pool: treap heap order violated at node %d", pool, node)
		}
		if node >= n || seen[node] {
			audit.Failf(chk, "alloc", "index-integrity",
				"%s pool: node %d out of range or indexed twice", pool, node)
			return node, node
		}
		seen[node] = true
		count++
		sc, sm, sne := state(node)
		if nd.cores != sc || nd.mem != sm {
			audit.Failf(chk, "alloc", "index-integrity",
				"%s pool: node %d key (%g, %g) stale vs server (%g, %g)",
				pool, node, nd.cores, nd.mem, sc, sm)
		}
		if nd.ne != ne || sne != ne {
			audit.Failf(chk, "alloc", "index-integrity",
				"%s pool: node %d (nonEmpty=%v) in wrong occupancy treap (ne=%v)", pool, node, sne, ne)
		}
		mm := nd.mem
		lo, hi := node, node
		if nd.left != nilNode {
			llo, lhi := walk(nd.left, ne, nd.prio)
			if !ix.keyLess(lhi, node) {
				audit.Failf(chk, "alloc", "index-integrity",
					"%s pool: treap key order violated left of node %d", pool, node)
			}
			if lm := ix.nodes[nd.left].maxMem; lm > mm {
				mm = lm
			}
			lo = llo
		}
		if nd.right != nilNode {
			rlo, rhi := walk(nd.right, ne, nd.prio)
			if !ix.keyLess(node, rlo) {
				audit.Failf(chk, "alloc", "index-integrity",
					"%s pool: treap key order violated right of node %d", pool, node)
			}
			if rm := ix.nodes[nd.right].maxMem; rm > mm {
				mm = rm
			}
			hi = rhi
		}
		if nd.maxMem != mm {
			audit.Failf(chk, "alloc", "index-integrity",
				"%s pool: node %d maxMem %g, recomputed %g", pool, node, nd.maxMem, mm)
		}
		return lo, hi
	}
	const maxPrio = ^uint32(0)
	if ix.rootNE != nilNode {
		walk(ix.rootNE, true, maxPrio)
	}
	if ix.rootE != nilNode {
		walk(ix.rootE, false, maxPrio)
	}
	if count != n {
		audit.Failf(chk, "alloc", "index-integrity",
			"%s pool: %d of %d servers indexed", pool, count, n)
	}
	// Segment tree: exact leaves for attached ids, identity leaves
	// beyond them, consistent internal combines.
	for i := int32(0); i < ix.segSize; i++ {
		sn := ix.seg[ix.segSize+i]
		want := emptySeg
		if i < n {
			sc, sm, sne := state(i)
			if sne {
				want.coresNE, want.memNE = sc, sm
			} else {
				want.coresE, want.memE, want.cntE = sc, sm, 1
			}
		}
		if sn != want {
			audit.Failf(chk, "alloc", "index-integrity",
				"%s pool: segment leaf %d stale: %+v, want %+v", pool, i, sn, want)
		}
	}
	for i := ix.segSize - 1; i >= 1; i-- {
		if want := combineSeg(&ix.seg[2*i], &ix.seg[2*i+1]); ix.seg[i] != want {
			audit.Failf(chk, "alloc", "index-integrity",
				"%s pool: segment node %d inconsistent with children", pool, i)
		}
	}
}
