package alloc

// Columnar streaming simulator: the million-server allocation path.
//
// The original simulator (the reference layout retained below in
// alloc.go) materializes one heap-allocated server struct per server
// up front — fine at 10^3 servers, hostile at 10^6: a million pointer
// dereferences per snapshot sweep, a million objects for the GC to
// trace, and full materialization even when a replay touches a sliver
// of the fleet. This file rebuilds the allocation path around two
// ideas:
//
//   - Columnar fleet state. A pool is four parallel slices
//     (coresFree, memFree, vms, touched) indexed by server id, plus
//     the shared ixCore placement index attached over those ids.
//     Snapshot sweeps walk flat float64 arrays; the whole fleet is a
//     handful of allocations regardless of size.
//
//   - A virgin frontier. Servers an id at or past `frontier` have
//     never hosted a VM, so they are all byte-identical: full free
//     capacity, empty. They exist implicitly — no column entries, no
//     index nodes — until first touched. Because every placement that
//     opens a new server provably lands on the lowest virgin id (see
//     pick), the touched set is always exactly the prefix
//     [0, frontier), and a replay's memory footprint is
//     O(servers touched), not O(servers configured).
//
// The simulator itself (Sim) is a push-style event consumer:
// NewSim → Step per arrival → Finish at the horizon. SimulateSource
// drives it from any trace.Source, so a binary trace streams through
// without ever materializing; snapshot.go checkpoints a Sim between
// Steps and restores it bit-identically. Decision identity with the
// reference layout — same placements, same rejections, same Result
// bits — is proven by the differential suite and cross-checked at
// runtime on every audited placement.

import (
	"context"
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/trace"
)

// fleet is one pool of identical servers in columnar form. Ids in
// [0, frontier) are materialized in the parallel slices and attached
// to ix; ids in [frontier, n) are virgin — implicitly at full free
// capacity, empty, and absent from the index.
type fleet struct {
	class      ServerClass
	capC, capM float64 // float64(class.Cores), float64(class.Memory)
	n          int32   // configured pool size
	frontier   int32   // touched servers are exactly [0, frontier)
	coresFree  []float64
	memFree    []float64
	vms        []int32
	touched    []float64 // resident VMs' aggregate touched memory, GB
	ix         ixCore
}

func newFleet(class ServerClass, n int) fleet {
	f := fleet{
		class: class,
		capC:  float64(class.Cores),
		capM:  float64(class.Memory),
		n:     int32(n),
	}
	// The ixCore zero value has roots at node 0, a valid id; an empty
	// core must point at nilNode.
	f.ix.rootNE, f.ix.rootE = nilNode, nilNode
	return f
}

// state reports a server's free capacity and occupancy, answering for
// virgins without materializing them.
func (f *fleet) state(id int32) (cores, mem float64, nonEmpty bool) {
	if id < f.frontier {
		return f.coresFree[id], f.memFree[id], f.vms[id] > 0
	}
	return f.capC, f.capM, false
}

// pick selects a feasible server decision-identically to the reference
// scan over all n servers. The scan visits ids ascending, so it
// reduces to: scan [0, frontier) — which the index answers — then
// offer the first virgin (id == frontier) as one more candidate. Later
// virgins are identical to the first and the scan's preference
// predicate is strict (ties keep the incumbent), so they can never win
// and need not be considered; this is also why a placement opening a
// new server always opens id frontier, keeping the touched set a
// prefix.
func (f *fleet) pick(cores, mem float64, pol Policy, preferNonEmpty bool) int32 {
	virgin := f.frontier < f.n && f.capC >= cores && f.capM >= mem
	if f.frontier == 0 {
		if virgin {
			return f.frontier
		}
		return nilNode
	}
	if preferNonEmpty {
		// The virgin is empty, so any feasible non-empty server beats
		// it outright; it only competes in the empty phase.
		if t := f.ix.pickClass(cores, mem, pol, true); t != nilNode {
			return t
		}
		return f.combine(f.ix.pickClass(cores, mem, pol, false), virgin, pol)
	}
	return f.combine(f.ix.pickNode(cores, mem, pol, false), virgin, pol)
}

// combine resolves the touched winner t against the virgin candidate
// (full capacity, id frontier) under the scan's preference predicate.
// The virgin has the highest id, so every tie keeps t.
func (f *fleet) combine(t int32, virgin bool, pol Policy) int32 {
	if !virgin {
		return t
	}
	if t == nilNode {
		return f.frontier
	}
	nd := &f.ix.nodes[t]
	switch pol {
	case BestFit:
		if f.capC != nd.cores {
			if f.capC < nd.cores {
				return f.frontier
			}
			return t
		}
		if f.capM < nd.mem {
			return f.frontier
		}
		return t
	case WorstFit:
		if f.capC != nd.cores {
			if f.capC > nd.cores {
				return f.frontier
			}
			return t
		}
		if f.capM > nd.mem {
			return f.frontier
		}
		return t
	default: // FirstFit: the lower (touched) id always wins.
		return t
	}
}

// firstEmptyFitting is the single-pool full-node rule: the lowest id
// of an empty server fitting (cores, mem). Touched empties all precede
// the first virgin.
func (f *fleet) firstEmptyFitting(cores, mem float64) int32 {
	if f.frontier > 0 {
		if t := f.ix.firstEmptyFittingNode(cores, mem); t != nilNode {
			return t
		}
	}
	if f.frontier < f.n && f.capC >= cores && f.capM >= mem {
		return f.frontier
	}
	return nilNode
}

// place applies a placement to a server, materializing it first if it
// is the frontier virgin.
func (f *fleet) place(id int32, cores, mem, touched float64) {
	if id == f.frontier {
		f.coresFree = append(f.coresFree, f.capC)
		f.memFree = append(f.memFree, f.capM)
		f.vms = append(f.vms, 0)
		f.touched = append(f.touched, 0)
		f.ix.grow(f.frontier + 1)
		f.ix.attachID(f.frontier, f.capC, f.capM, false)
		f.frontier++
	}
	f.ix.detachID(id)
	f.coresFree[id] -= cores
	f.memFree[id] -= mem
	f.vms[id]++
	f.touched[id] += touched
	f.ix.attachID(id, f.coresFree[id], f.memFree[id], f.vms[id] > 0)
}

// release returns a departure's resources. Departing VMs were placed,
// so id is always materialized. A drained server stays materialized
// and indexed: its accumulated float drift is part of decision
// identity with the reference layout, which never forgets a server
// either.
func (f *fleet) release(id int32, cores, mem, touched float64) {
	f.ix.detachID(id)
	f.coresFree[id] += cores
	f.memFree[id] += mem
	f.vms[id]--
	f.touched[id] -= touched
	f.ix.attachID(id, f.coresFree[id], f.memFree[id], f.vms[id] > 0)
}

// scanPick is the columnar reference scan: the same preference
// predicate as pick() in alloc.go, run over the touched prefix plus
// the first virgin. Audited runs re-derive every indexed decision
// through it.
func (f *fleet) scanPick(cores, mem float64, pol Policy, preferNonEmpty bool) int32 {
	best := nilNode
	var bc, bm float64
	bne := false
	limit := f.frontier
	if f.frontier < f.n {
		limit++
	}
	for id := int32(0); id < limit; id++ {
		c, m, ne := f.state(id)
		if !(c >= cores && m >= mem) {
			continue
		}
		better := false
		switch {
		case best == nilNode:
			better = true
		case preferNonEmpty && ne != bne:
			better = ne
		default:
			switch pol {
			case BestFit:
				if c != bc {
					better = c < bc
				} else {
					better = m < bm
				}
			case WorstFit:
				if c != bc {
					better = c > bc
				} else {
					better = m > bm
				}
			}
		}
		if better {
			best, bc, bm, bne = id, c, m, ne
		}
	}
	return best
}

// observeInto folds one snapshot of the fleet into the aggregator,
// visiting non-empty servers in id order — the same sequence the
// struct-layout observe sees, so the running sums stay bit-identical.
// Virgins are empty by definition and contribute nothing.
func (f *fleet) observeInto(a *aggregator) {
	if f.n == 0 {
		return
	}
	var allocC, capC, allocM, capM float64
	for id := int32(0); id < f.frontier; id++ {
		if f.vms[id] == 0 {
			continue
		}
		allocC += f.capC - f.coresFree[id]
		capC += f.capC
		allocM += f.capM - f.memFree[id]
		capM += f.capM
		a.observeServer(&f.class, f.touched[id])
	}
	a.observePacking(allocC, capC, allocM, capM)
}

// colDeparture is a pending departure in the columnar simulator: the
// server is named by pool and id, not pointer, so the heap is flat
// data the snapshot codec can carry verbatim.
type colDeparture struct {
	at         float64
	cores, mem float64
	touched    float64
	id         int32
	green      bool
}

// colDepHeap mirrors depHeap's ordering and sift moves exactly
// (compare .at only, same swap pattern), so equal-time departures pop
// in the identical order — part of decision identity.
type colDepHeap []colDeparture

func colDepPush(h *colDepHeap, d colDeparture) {
	*h = append(*h, d)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hh[parent].at <= hh[i].at {
			break
		}
		hh[parent], hh[i] = hh[i], hh[parent]
		i = parent
	}
}

func colDepPop(h *colDepHeap) colDeparture {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = colDeparture{}
	*h = hh[:n]
	colDepSiftDown(hh[:n], 0)
	return top
}

func colDepSiftDown(h colDepHeap, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].at < h[l].at {
			m = r
		}
		if h[i].at <= h[m].at {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Sim is the streaming columnar simulator: feed arrivals with Step in
// trace order, close with Finish. Between Steps its entire state is
// flat data — Snapshot/Restore (snapshot.go) checkpoint it exactly.
type Sim struct {
	cfg    Config
	decide Decider
	chk    audit.Checker
	name   string

	base, green fleet
	deps        colDepHeap
	baseAgg     aggregator
	greenAgg    aggregator

	res        Result
	nextSnap   float64
	snapEvery  float64
	lastArrive float64
	events     int
}

// NewSim validates the cluster configuration and returns an empty
// simulator. The configuration checks and their messages match
// SimulateContext's.
func NewSim(name string, cfg Config, decide Decider) (*Sim, error) {
	if cfg.ReferenceScan || cfg.ReferenceLayout {
		return nil, fmt.Errorf("alloc: the streaming simulator is columnar only; use SimulateContext for the reference paths")
	}
	if cfg.NBase < 0 || cfg.NGreen < 0 || cfg.NBase+cfg.NGreen == 0 {
		return nil, fmt.Errorf("alloc: cluster needs at least one server")
	}
	if cfg.NBase > 0 && (cfg.Base.Cores <= 0 || cfg.Base.Memory <= 0) {
		return nil, fmt.Errorf("alloc: baseline class has no capacity")
	}
	if cfg.NGreen > 0 && (cfg.Green.Cores <= 0 || cfg.Green.Memory <= 0) {
		return nil, fmt.Errorf("alloc: green class has no capacity")
	}
	if decide == nil {
		decide = AdoptNone
	}
	snapEvery := cfg.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 12
	}
	return &Sim{
		cfg:        cfg,
		decide:     decide,
		chk:        audit.Resolve(cfg.Audit),
		name:       name,
		base:       newFleet(cfg.Base, cfg.NBase),
		green:      newFleet(cfg.Green, cfg.NGreen),
		nextSnap:   snapEvery,
		snapEvery:  snapEvery,
		lastArrive: math.Inf(-1),
	}, nil
}

// Events reports how many arrivals the simulator has consumed.
func (s *Sim) Events() int { return s.events }

func (s *Sim) release(until float64) {
	for len(s.deps) > 0 && s.deps[0].at <= until {
		d := colDepPop(&s.deps)
		f := &s.base
		if d.green {
			f = &s.green
		}
		f.release(d.id, d.cores, d.mem, d.touched)
		if s.chk != nil {
			colAuditBounds(s.chk, f, d.id, "release")
		}
	}
}

func (s *Sim) observe() {
	s.base.observeInto(&s.baseAgg)
	s.green.observeInto(&s.greenAgg)
	s.res.Snapshots++
}

// Step consumes one arrival. Events must arrive in trace order; each
// is validated on the way in (trace.CheckVM), so malformed streams are
// rejected at the first bad event with the same message Validate gives.
func (s *Sim) Step(vm trace.VM) error {
	if err := trace.CheckVM(s.name, s.events, s.lastArrive, vm); err != nil {
		return err
	}
	// Take snapshots and release departed VMs up to this arrival.
	for s.nextSnap <= vm.Arrive {
		s.release(s.nextSnap)
		s.observe()
		s.nextSnap += s.snapEvery
	}
	s.release(vm.Arrive)

	d := s.decide(vm)
	if d.Scale < 1 {
		d.Scale = 1
	}
	placed := nilNode
	var cores, mem float64
	placedGreen := false
	if vm.FullNode {
		full, fullMem := s.base.capC, s.base.capM
		placed = s.base.firstEmptyFitting(full, fullMem)
		if s.chk != nil {
			s.auditFullNodePick(placed, full, fullMem)
		}
		if placed != nilNode {
			cores, mem = full, fullMem
		}
	} else {
		if d.Adopt && s.cfg.NGreen > 0 {
			cores = float64(vm.Cores) * d.Scale
			mem = float64(vm.Memory) * d.Scale
			placed = s.pickFrom(&s.green, "green", cores, mem)
			placedGreen = placed != nilNode
		}
		if placed == nilNode {
			cores = float64(vm.Cores)
			mem = float64(vm.Memory)
			placed = s.pickFrom(&s.base, "base", cores, mem)
		}
	}
	if placed == nilNode {
		if s.chk != nil {
			s.auditRejection(vm, d)
		}
		s.res.Rejected++
		if vm.Deferrable {
			s.res.DeferrableRejected++
		}
		s.lastArrive = vm.Arrive
		s.events++
		return nil
	}
	f := &s.base
	if placedGreen {
		f = &s.green
	}
	if s.chk != nil {
		if fc, fm, _ := f.state(placed); !(fc >= cores && fm >= mem) {
			audit.Failf(s.chk, "alloc", "admissibility",
				"VM %d (%gc/%gGB) placed on %s with only %gc/%gGB free",
				vm.ID, cores, mem, f.class.Name, fc, fm)
		}
		if vm.Depart <= vm.Arrive {
			audit.Failf(s.chk, "alloc", "placed-after-departure",
				"VM %d placed at t=%g after its departure t=%g", vm.ID, vm.Arrive, vm.Depart)
		}
	}
	touched := mem * vm.MaxMemFrac
	f.place(placed, cores, mem, touched)
	if s.chk != nil {
		colAuditBounds(s.chk, f, placed, "place")
	}
	if testObserve != nil {
		testObserve(vm.ID, placedGreen, placed)
	}
	colDepPush(&s.deps, colDeparture{at: vm.Depart, cores: cores, mem: mem, touched: touched, id: placed, green: placedGreen})
	s.res.Placed++
	if vm.Deferrable {
		s.res.DeferrablePlaced++
	}
	s.lastArrive = vm.Arrive
	s.events++
	return nil
}

// pickFrom picks through the index; with auditing on, the decision is
// re-derived by the columnar reference scan and any disagreement
// reported.
func (s *Sim) pickFrom(f *fleet, pool string, cores, mem float64) int32 {
	id := f.pick(cores, mem, s.cfg.Policy, s.cfg.PreferNonEmpty)
	if s.chk != nil {
		if ref := f.scanPick(cores, mem, s.cfg.Policy, s.cfg.PreferNonEmpty); ref != id {
			audit.Failf(s.chk, "alloc", "index-divergence",
				"%s pick(%gc/%gGB, %v, preferNonEmpty=%v): index chose server %d, scan chose %d",
				pool, cores, mem, s.cfg.Policy, s.cfg.PreferNonEmpty, id, ref)
		}
	}
	return id
}

// auditFullNodePick cross-checks the full-node selection against a
// scan for the lowest empty fitting server.
func (s *Sim) auditFullNodePick(got int32, full, fullMem float64) {
	want := nilNode
	limit := s.base.frontier
	if s.base.frontier < s.base.n {
		limit++
	}
	for id := int32(0); id < limit; id++ {
		c, m, ne := s.base.state(id)
		if !ne && c >= full && m >= fullMem {
			want = id
			break
		}
	}
	if got != want {
		audit.Failf(s.chk, "alloc", "index-divergence",
			"full-node pick: index chose server %d, scan chose %d", got, want)
	}
}

// auditRejection verifies a rejection was genuine under the columnar
// layout: no feasible server exists in any pool the VM was offered to.
func (s *Sim) auditRejection(vm trace.VM, d Decision) {
	if vm.FullNode {
		if s.base.firstEmptyFitting(s.base.capC, s.base.capM) != nilNode {
			audit.Failf(s.chk, "alloc", "spurious-rejection",
				"full-node VM %d rejected with an empty baseline server available", vm.ID)
		}
		return
	}
	if s.base.scanPick(float64(vm.Cores), float64(vm.Memory), s.cfg.Policy, s.cfg.PreferNonEmpty) != nilNode {
		audit.Failf(s.chk, "alloc", "spurious-rejection",
			"VM %d (%dc/%gGB) rejected with feasible baseline server", vm.ID, vm.Cores, float64(vm.Memory))
	}
	if d.Adopt && s.cfg.NGreen > 0 {
		scaledCores := float64(vm.Cores) * d.Scale
		scaledMem := float64(vm.Memory) * d.Scale
		if s.green.scanPick(scaledCores, scaledMem, s.cfg.Policy, s.cfg.PreferNonEmpty) != nilNode {
			audit.Failf(s.chk, "alloc", "spurious-rejection",
				"adopting VM %d (%gc/%gGB scaled) rejected with feasible green server", vm.ID, scaledCores, scaledMem)
		}
	}
}

// colAuditBounds is auditServerBounds for a columnar server.
func colAuditBounds(chk audit.Checker, f *fleet, id int32, op string) {
	const tol = audit.SimTol
	if c := f.coresFree[id]; c < -tol || c > f.capC+tol {
		audit.Failf(chk, "alloc", "core-conservation",
			"%s on %s: free cores %g outside [0, %d]", op, f.class.Name, c, f.class.Cores)
	}
	if m := f.memFree[id]; m < -tol || m > f.capM+tol {
		audit.Failf(chk, "alloc", "memory-conservation",
			"%s on %s: free memory %g outside [0, %g]", op, f.class.Name, m, f.capM)
	}
	if f.vms[id] < 0 {
		audit.Failf(chk, "alloc", "vm-count", "%s on %s: resident VM count %d < 0", op, f.class.Name, f.vms[id])
	}
	if f.touched[id] < -tol {
		audit.Failf(chk, "alloc", "memory-conservation",
			"%s on %s: touched memory %g < 0", op, f.class.Name, f.touched[id])
	}
}

// auditConservationFleet checks a fully-drained fleet returned to its
// initial state. Virgins are untouched by construction; the touched
// prefix must have drained back to exact full capacity.
func auditConservationFleet(chk audit.Checker, f *fleet) {
	for id := int32(0); id < f.frontier; id++ {
		if !audit.Close(f.coresFree[id], f.capC, audit.SimTol) {
			audit.Failf(chk, "alloc", "core-conservation",
				"server %d (%s): %g cores free after drain, want %d", id, f.class.Name, f.coresFree[id], f.class.Cores)
		}
		if !audit.Close(f.memFree[id], f.capM, audit.SimTol) {
			audit.Failf(chk, "alloc", "memory-conservation",
				"server %d (%s): %g GB free after drain, want %g", id, f.class.Name, f.memFree[id], f.capM)
		}
		if f.vms[id] != 0 {
			audit.Failf(chk, "alloc", "vm-count",
				"server %d (%s): %d VMs resident after drain", id, f.class.Name, f.vms[id])
		}
		if !audit.Close(f.touched[id], 0, audit.SimTol) {
			audit.Failf(chk, "alloc", "memory-conservation",
				"server %d (%s): %g GB touched after drain", id, f.class.Name, f.touched[id])
		}
	}
}

// Finish runs the tail snapshots through the horizon, takes the final
// observation, drains the audit checks, and returns the Result.
func (s *Sim) Finish(horizon float64) Result {
	for s.nextSnap <= horizon {
		s.release(s.nextSnap)
		s.observe()
		s.nextSnap += s.snapEvery
	}
	s.release(horizon)
	s.observe()

	if s.chk != nil {
		s.release(math.Inf(1))
		auditConservationFleet(s.chk, &s.base)
		auditConservationFleet(s.chk, &s.green)
		s.base.ix.auditIntegrityCore(s.chk, "base", s.base.frontier, s.base.state)
		s.green.ix.auditIntegrityCore(s.chk, "green", s.green.frontier, s.green.state)
	}

	res := s.res
	res.Base = s.baseAgg.stats()
	res.Green = s.greenAgg.stats()
	return res
}

// SimulateSource replays a streaming event source through the columnar
// simulator — the path SimulateContext takes by default, and the only
// way to consume a binary trace without materializing it. Cancellation
// is polled every 1024 events, matching SimulateContext.
func SimulateSource(ctx context.Context, src trace.Source, cfg Config, decide Decider) (Result, error) {
	sim, err := NewSim(src.Name(), cfg, decide)
	if err != nil {
		return Result{}, err
	}
	for i := 0; ; i++ {
		vm, ok := src.Next()
		if !ok {
			break
		}
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if err := sim.Step(vm); err != nil {
			return Result{}, err
		}
	}
	if err := src.Err(); err != nil {
		return Result{}, err
	}
	return sim.Finish(src.Horizon()), nil
}
