package alloc

// Sharded multi-pool replay.
//
// SimulateMultiContext's placement rule gives the simulation a natural
// parallel decomposition: a VM tries the green pools in cluster order
// and falls back to the baseline, so pool i's offered stream is
// exactly the stream pool i-1 declined. Pools never share servers, and
// releases and snapshots touch only the pool that placed the VM —
// the only cross-pool coupling is that rejection stream. Sharding
// therefore splits the ordered pool list (greens, then base) into
// contiguous stages, runs one simulator per stage through engine.Map,
// and pipes each stage's declined VMs to the next in batches. Every
// pool sees the identical offered substream in the identical order as
// the sequential replay, so per-pool decisions — and the merged
// MultiResult — are identical bit for bit; the differential suite
// proves it across the production traces, and a race-mode CI step
// keeps the pipeline honest.
//
// The merge is index-slotted: engine.Map returns stage results in
// stage order regardless of completion order, each stage reports the
// ClassStats of exactly the pools it owned, and the merged Green slice
// is their concatenation — no reduction step that could reorder or
// reweigh anything.
//
// Throughput: stages overlap in time (stage k works on batch b while
// stage k+1 works on batch b-1), so the speedup bound is the number of
// pools with real traffic. Full-node VMs ride the pipeline untouched
// until the base stage, which applies the usual first-empty rule.

import (
	"context"

	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/trace"
)

// shardBatch is the unit of inter-stage flow: arrivals still looking
// for a pool, in trace order, with their directives resolved once (the
// decider runs exactly once per VM, in the first stage, so stateful
// deciders observe the same call sequence as the sequential replay).
type shardBatch struct {
	vms    []trace.VM
	scales []MultiDecision
}

const shardBatchLen = 1024

// shardStage is one pipeline stage's scope and result. Stages own the
// green pools [gLo, gHi); the last stage also owns the baseline pool
// and with it the final rejection count.
type shardStageResult struct {
	placed    int
	rejected  int
	snapshots int
	green     []ClassStats
	base      ClassStats
}

// simulateMultiSharded is the Shards > 1 path of SimulateMultiContext.
// The trace is already validated and the cluster checked.
func simulateMultiSharded(ctx context.Context, tr trace.Trace, mc MultiConfig, decide MultiDecider, stages int) (MultiResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	nGreens := len(mc.Greens)
	// Distribute the green pools contiguously across the first
	// stages-1 shards; the last shard takes the remainder plus the
	// baseline. Contiguity preserves the try-order.
	bounds := make([][2]int, stages) // [gLo, gHi) per stage
	per := nGreens / stages
	extra := nGreens % stages
	lo := 0
	for i := range bounds {
		width := per
		if i < extra {
			width++
		}
		bounds[i] = [2]int{lo, lo + width}
		lo += width
	}
	bounds[stages-1][1] = nGreens

	// The inter-stage pipes. pipes[k] feeds stage k; stage k feeds
	// pipes[k+1]. Buffered so a fast stage can run ahead one batch.
	pipes := make([]chan shardBatch, stages+1)
	for i := range pipes {
		pipes[i] = make(chan shardBatch, 1)
	}

	send := func(c chan<- shardBatch, b shardBatch) error {
		select {
		case c <- b:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// The feeder resolves directives and seeds the pipeline. It runs
	// as stage index 0 of the Map below alongside the pool stages, so
	// a panic anywhere tears the whole pipeline down through ctx.
	feed := func(ctx context.Context) error {
		defer close(pipes[0])
		batch := shardBatch{}
		for i, vm := range tr.VMs {
			if i&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			var d MultiDecision
			if !vm.FullNode {
				d = decide(vm)
			}
			batch.vms = append(batch.vms, vm)
			batch.scales = append(batch.scales, d)
			if len(batch.vms) >= shardBatchLen {
				if err := send(pipes[0], batch); err != nil {
					return err
				}
				batch = shardBatch{}
			}
		}
		if len(batch.vms) > 0 {
			return send(pipes[0], batch)
		}
		return nil
	}

	snapEvery := mc.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 12
	}
	cfg := Config{Policy: mc.Policy, PreferNonEmpty: mc.PreferNonEmpty}

	runStage := func(ctx context.Context, k int) (shardStageResult, error) {
		defer func() {
			// Unblock the upstream stage before unwinding a panic so
			// the whole Map returns and reports it.
			if r := recover(); r != nil {
				cancel()
				panic(r)
			}
		}()
		defer close(pipes[k+1])
		isBase := k == stages-1
		gLo, gHi := bounds[k][0], bounds[k][1]

		pools := mc.Greens[gLo:gHi]
		srvs := make([][]*server, len(pools))
		ixs := make([]*poolIndex, len(pools))
		aggs := make([]*aggregator, len(pools))
		for i := range pools {
			cls := pools[i].Class
			srvs[i] = makeServers(&cls, pools[i].N)
			if !mc.ReferenceScan && !testIgnoreCapacity {
				ixs[i] = newPoolIndex(srvs[i])
			}
			aggs[i] = newAggregator()
		}
		var baseSrvs []*server
		var baseIx *poolIndex
		baseAgg := newAggregator()
		if isBase {
			baseSrvs = makeServers(&mc.Base.Class, mc.Base.N)
			if !mc.ReferenceScan && !testIgnoreCapacity {
				baseIx = newPoolIndex(baseSrvs)
			}
		}

		var deps depHeap
		var out shardStageResult
		nextSnap := snapEvery

		release := func(until float64) {
			for len(deps) > 0 && deps[0].at <= until {
				d := depPop(&deps)
				s := d.srv
				if s.ix != nil {
					s.ix.detach(s)
				}
				s.coresFree += d.cores
				s.memFree += d.mem
				s.vms--
				s.maxMemTouched -= d.touched
				if s.ix != nil {
					s.ix.attach(s)
				}
			}
		}
		observe := func() {
			for i := range pools {
				aggs[i].observe(srvs[i])
			}
			if isBase {
				baseAgg.observe(baseSrvs)
			}
			out.snapshots++
		}
		place := func(s *server, cores, mem, touched, depart float64) {
			if s.ix != nil {
				s.ix.detach(s)
			}
			s.coresFree -= cores
			s.memFree -= mem
			s.vms++
			s.maxMemTouched += touched
			if s.ix != nil {
				s.ix.attach(s)
			}
			depPush(&deps, departure{at: depart, srv: s, cores: cores, mem: mem, touched: touched})
			out.placed++
		}

		var pass shardBatch
		for {
			var batch shardBatch
			var ok bool
			select {
			case batch, ok = <-pipes[k]:
			case <-ctx.Done():
				return out, ctx.Err()
			}
			if !ok {
				break
			}
			for bi, vm := range batch.vms {
				for nextSnap <= vm.Arrive {
					release(nextSnap)
					observe()
					nextSnap += snapEvery
				}
				release(vm.Arrive)

				d := batch.scales[bi]
				var placedSrv *server
				var cores, mem float64
				if vm.FullNode {
					if isBase {
						// The multi-pool full-node rule: first empty
						// baseline server, no capacity check.
						if baseIx != nil {
							placedSrv = baseIx.firstEmpty()
						} else {
							for _, s := range baseSrvs {
								if s.vms == 0 {
									placedSrv = s
									break
								}
							}
						}
						if placedSrv != nil {
							cores = float64(placedSrv.class.Cores)
							mem = float64(placedSrv.class.Memory)
						}
					}
				} else {
					for i := range pools {
						gi := gLo + i
						if gi >= len(d.Scales) || d.Scales[gi] <= 0 {
							continue
						}
						scale := d.Scales[gi]
						if scale < 1 {
							scale = 1
						}
						cores = float64(vm.Cores) * scale
						mem = float64(vm.Memory) * scale
						placedSrv = pickFrom(nil, ixs[i], srvs[i], cores, mem, cfg)
						if placedSrv != nil {
							break
						}
					}
					if placedSrv == nil && isBase {
						cores = float64(vm.Cores)
						mem = float64(vm.Memory)
						placedSrv = pickFrom(nil, baseIx, baseSrvs, cores, mem, cfg)
					}
				}
				if placedSrv != nil {
					place(placedSrv, cores, mem, mem*vm.MaxMemFrac, vm.Depart)
					continue
				}
				if isBase {
					out.rejected++
					continue
				}
				pass.vms = append(pass.vms, vm)
				pass.scales = append(pass.scales, d)
				if len(pass.vms) >= shardBatchLen {
					if err := send(pipes[k+1], pass); err != nil {
						return out, err
					}
					pass = shardBatch{}
				}
			}
		}
		if len(pass.vms) > 0 {
			if err := send(pipes[k+1], pass); err != nil {
				return out, err
			}
		}
		for nextSnap <= tr.Horizon {
			release(nextSnap)
			observe()
			nextSnap += snapEvery
		}
		release(tr.Horizon)
		observe()

		out.green = make([]ClassStats, len(pools))
		for i := range pools {
			out.green[i] = aggs[i].stats()
		}
		if isBase {
			out.base = baseAgg.stats()
		}
		return out, nil
	}

	// One Map over feeder + stages. Workers must cover every job:
	// pipeline stages block on each other, so running them on fewer
	// goroutines than jobs would deadlock.
	results := engine.Map(ctx, stages+1, stages+1, func(ctx context.Context, i int) (shardStageResult, error) {
		if i == 0 {
			return shardStageResult{}, feed(ctx)
		}
		return runStage(ctx, i-1)
	})
	// Nothing drains pipes[stages]: the base stage rejects instead of
	// passing, so it only ever closes it.
	vals, err := engine.Collect(results)
	if err != nil {
		return MultiResult{}, err
	}

	var res MultiResult
	res.Green = make([]ClassStats, 0, nGreens)
	for _, v := range vals[1:] {
		res.Placed += v.placed
		res.Green = append(res.Green, v.green...)
	}
	last := vals[len(vals)-1]
	res.Rejected = last.rejected
	res.Base = last.base
	res.Snapshots = last.snapshots
	return res, nil
}
