package alloc

// Multi-pool allocation: §II's design goal D2 notes that every
// additional SKU type in a fleet has side effects, but a second
// GreenSKU could serve applications the first cannot. SimulateMulti
// generalises Simulate to a baseline pool plus any number of GreenSKU
// pools, with per-VM, per-pool directives.

import (
	"context"
	"fmt"

	"github.com/greensku/gsf/internal/trace"
)

// Pool is one homogeneous group of servers in a mixed cluster.
type Pool struct {
	Class ServerClass
	N     int
}

// MultiDecision directs one VM across the green pools: Scales[i] > 0
// permits pool i (in cluster order) with that scaling factor; 0 forbids
// it. Pools are tried in order, so the caller encodes preference by
// ordering pools from most to least carbon-efficient for the workload.
type MultiDecision struct {
	Scales []float64
}

// MultiDecider maps a VM to its per-pool directive.
type MultiDecider func(trace.VM) MultiDecision

// MultiConfig describes the multi-pool cluster.
type MultiConfig struct {
	Base           Pool
	Greens         []Pool
	Policy         Policy
	PreferNonEmpty bool
	// SnapshotEvery controls utilisation snapshots (trace hours);
	// zero defaults to 12h.
	SnapshotEvery float64
	// ReferenceScan selects the O(S) linear-scan reference allocator
	// instead of the placement index, as in Config.ReferenceScan.
	ReferenceScan bool
	// Shards > 1 runs the replay as a pool-sharded pipeline (shard.go):
	// the ordered pool list (greens, then baseline) is split across up
	// to Shards concurrent stages, each VM flowing through the stages
	// it is offered to. Results are identical to the sequential replay
	// bit for bit — pools see the same offered streams either way; the
	// differential suite proves it. 0 or 1 replays sequentially;
	// values past the pool count are clamped.
	Shards int
}

// MultiResult holds per-pool statistics.
type MultiResult struct {
	Placed    int
	Rejected  int
	Base      ClassStats
	Green     []ClassStats // aligned with the green pools
	Snapshots int
}

// SimulateMulti replays a trace against a baseline pool plus green
// pools. Full-node VMs pin to the baseline; other VMs try the green
// pools in order (scaled per the directive) and fall back to the
// baseline.
func SimulateMulti(tr trace.Trace, mc MultiConfig, decide MultiDecider) (MultiResult, error) {
	return SimulateMultiContext(context.Background(), tr, mc, decide)
}

// SimulateMultiContext is SimulateMulti with cancellation, polled every
// 1024 VMs like SimulateContext.
func SimulateMultiContext(ctx context.Context, tr trace.Trace, mc MultiConfig, decide MultiDecider) (MultiResult, error) {
	if err := tr.Validate(); err != nil {
		return MultiResult{}, err
	}
	base, greens := mc.Base, mc.Greens
	total := base.N
	for _, g := range greens {
		total += g.N
		if g.N > 0 && (g.Class.Cores <= 0 || g.Class.Memory <= 0) {
			return MultiResult{}, fmt.Errorf("alloc: green pool %s has no capacity", g.Class.Name)
		}
	}
	if total == 0 {
		return MultiResult{}, fmt.Errorf("alloc: cluster needs at least one server")
	}
	if base.N > 0 && (base.Class.Cores <= 0 || base.Class.Memory <= 0) {
		return MultiResult{}, fmt.Errorf("alloc: baseline pool has no capacity")
	}
	if decide == nil {
		decide = func(trace.VM) MultiDecision { return MultiDecision{} }
	}
	if stages := min(mc.Shards, len(greens)+1); stages > 1 {
		return simulateMultiSharded(ctx, tr, mc, decide, stages)
	}
	cfg := Config{Policy: mc.Policy, PreferNonEmpty: mc.PreferNonEmpty}
	snapEvery := mc.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 12
	}

	baseSrvs := makeServers(&base.Class, base.N)
	greenSrvs := make([][]*server, len(greens))
	for i := range greens {
		cls := greens[i].Class
		greenSrvs[i] = makeServers(&cls, greens[i].N)
	}

	var baseIx *poolIndex
	greenIxs := make([]*poolIndex, len(greens))
	if !mc.ReferenceScan && !testIgnoreCapacity {
		baseIx = newPoolIndex(baseSrvs)
		for i := range greens {
			greenIxs[i] = newPoolIndex(greenSrvs[i])
		}
	}

	var deps depHeap
	var res MultiResult
	baseAgg := newAggregator()
	greenAggs := make([]*aggregator, len(greens))
	for i := range greenAggs {
		greenAggs[i] = newAggregator()
	}
	nextSnap := snapEvery

	release := func(until float64) {
		for len(deps) > 0 && deps[0].at <= until {
			d := depPop(&deps)
			s := d.srv
			if s.ix != nil {
				s.ix.detach(s)
			}
			s.coresFree += d.cores
			s.memFree += d.mem
			s.vms--
			s.maxMemTouched -= d.touched
			if s.ix != nil {
				s.ix.attach(s)
			}
		}
	}
	observe := func() {
		baseAgg.observe(baseSrvs)
		for i := range greens {
			greenAggs[i].observe(greenSrvs[i])
		}
		res.Snapshots++
	}

	for i, vm := range tr.VMs {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return MultiResult{}, err
			}
		}
		for nextSnap <= vm.Arrive {
			release(nextSnap)
			observe()
			nextSnap += snapEvery
		}
		release(vm.Arrive)

		var placedSrv *server
		var cores, mem float64
		if vm.FullNode {
			// The multi-pool full-node rule takes the first empty
			// baseline server unconditionally (no capacity check).
			if baseIx != nil {
				placedSrv = baseIx.firstEmpty()
			} else {
				for _, s := range baseSrvs {
					if s.vms == 0 {
						placedSrv = s
						break
					}
				}
			}
			if placedSrv != nil {
				cores = float64(placedSrv.class.Cores)
				mem = float64(placedSrv.class.Memory)
			}
		} else {
			d := decide(vm)
			for i := range greens {
				if i >= len(d.Scales) || d.Scales[i] <= 0 {
					continue
				}
				scale := d.Scales[i]
				if scale < 1 {
					scale = 1
				}
				cores = float64(vm.Cores) * scale
				mem = float64(vm.Memory) * scale
				placedSrv = pickFrom(nil, greenIxs[i], greenSrvs[i], cores, mem, cfg)
				if placedSrv != nil {
					break
				}
			}
			if placedSrv == nil {
				cores = float64(vm.Cores)
				mem = float64(vm.Memory)
				placedSrv = pickFrom(nil, baseIx, baseSrvs, cores, mem, cfg)
			}
		}
		if placedSrv == nil {
			res.Rejected++
			continue
		}
		touched := mem * vm.MaxMemFrac
		if placedSrv.ix != nil {
			placedSrv.ix.detach(placedSrv)
		}
		placedSrv.coresFree -= cores
		placedSrv.memFree -= mem
		placedSrv.vms++
		placedSrv.maxMemTouched += touched
		if placedSrv.ix != nil {
			placedSrv.ix.attach(placedSrv)
		}
		depPush(&deps, departure{at: vm.Depart, srv: placedSrv, cores: cores, mem: mem, touched: touched})
		res.Placed++
	}
	for nextSnap <= tr.Horizon {
		release(nextSnap)
		observe()
		nextSnap += snapEvery
	}
	release(tr.Horizon)
	observe()

	res.Base = baseAgg.stats()
	res.Green = make([]ClassStats, len(greens))
	for i := range greens {
		res.Green[i] = greenAggs[i].stats()
	}
	return res, nil
}
