package alloc

// Table tests for the policies' tie-breaking, run against both the
// reference scan and the placement index. WorstFit historically broke
// ties arbitrarily (first server scanned with the max free cores);
// it now mirrors BestFit's two-level break symmetrically: most free
// cores, then most free memory, then first index.

import "testing"

func TestPolicyTieBreaking(t *testing.T) {
	type srvState struct {
		cores, mem float64
		vms        int
	}
	cases := []struct {
		name   string
		pol    Policy
		prefer bool
		srvs   []srvState
		c, m   float64
		want   int32 // expected server index; -1 for rejection
	}{
		{
			name: "bestfit/fewest-cores-wins",
			pol:  BestFit,
			srvs: []srvState{{8, 60, 1}, {4, 60, 1}, {6, 60, 1}},
			c:    2, m: 10, want: 1,
		},
		{
			name: "bestfit/cores-tie-breaks-on-less-memory",
			pol:  BestFit,
			srvs: []srvState{{4, 50, 1}, {4, 30, 1}, {4, 40, 1}},
			c:    2, m: 10, want: 1,
		},
		{
			name: "bestfit/full-tie-takes-first-index",
			pol:  BestFit,
			srvs: []srvState{{8, 60, 1}, {4, 30, 1}, {4, 30, 1}},
			c:    2, m: 10, want: 1,
		},
		{
			name: "worstfit/most-cores-wins",
			pol:  WorstFit,
			srvs: []srvState{{4, 60, 1}, {8, 60, 1}, {6, 60, 1}},
			c:    2, m: 10, want: 1,
		},
		{
			name: "worstfit/cores-tie-breaks-on-more-memory",
			pol:  WorstFit,
			srvs: []srvState{{8, 30, 1}, {8, 50, 1}, {8, 40, 1}},
			c:    2, m: 10, want: 1,
		},
		{
			name: "worstfit/full-tie-takes-first-index",
			pol:  WorstFit,
			srvs: []srvState{{4, 30, 1}, {8, 50, 1}, {8, 50, 1}},
			c:    2, m: 10, want: 1,
		},
		{
			name: "worstfit/memory-tie-break-respects-feasibility",
			pol:  WorstFit,
			// Server 1 has the most memory but too few cores; the
			// cores maximum among feasible servers is 6.
			srvs: []srvState{{6, 20, 1}, {2, 60, 1}, {6, 40, 1}},
			c:    3, m: 15, want: 2,
		},
		{
			name: "firstfit/first-feasible-index-wins",
			pol:  FirstFit,
			srvs: []srvState{{1, 60, 1}, {8, 5, 1}, {6, 40, 1}, {8, 60, 1}},
			c:    2, m: 10, want: 2,
		},
		{
			name:   "prefer-non-empty-dominates-policy-order",
			pol:    BestFit,
			prefer: true,
			// The empty server 0 is the strictly better best-fit, but
			// the occupied server 1 must win under PreferNonEmpty.
			srvs: []srvState{{3, 20, 0}, {8, 64, 1}},
			c:    2, m: 10, want: 1,
		},
		{
			name:   "prefer-non-empty-worstfit-memory-tie",
			pol:    WorstFit,
			prefer: true,
			srvs:   []srvState{{8, 64, 0}, {6, 20, 2}, {6, 50, 1}},
			c:      2, m: 10, want: 2,
		},
		{
			name: "no-feasible-server-rejects",
			pol:  WorstFit,
			srvs: []srvState{{2, 60, 1}, {8, 5, 1}},
			c:    4, m: 15, want: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			class := ServerClass{Name: "tie", Cores: 8, Memory: 64, LocalMemory: 64}
			servers := makeServers(&class, len(tc.srvs))
			for i, st := range tc.srvs {
				servers[i].coresFree = st.cores
				servers[i].memFree = st.mem
				servers[i].vms = st.vms
			}
			cfg := Config{Policy: tc.pol, PreferNonEmpty: tc.prefer}
			if got := srvID(pick(servers, tc.c, tc.m, cfg)); got != tc.want {
				t.Errorf("reference scan chose server %d, want %d", got, tc.want)
			}
			ix := newPoolIndex(servers)
			if got := srvID(ix.pick(tc.c, tc.m, tc.pol, tc.prefer)); got != tc.want {
				t.Errorf("index chose server %d, want %d", got, tc.want)
			}
		})
	}
}
