package alloc

// Fuzz harness for the placement index: arbitrary byte strings become
// place/release sequences, and after every operation each policy query
// is checked against the reference scan, with a full oracle walk at
// the end. Any reachable index state that disagrees with the scan —
// however contrived the interleaving — is a crash.

import "testing"

// runIndexOps interprets data as 3-byte (op, a, b) tuples:
//
//	op bit 7 set:  release the live placement selected by (a, b)
//	op bit 7 clear: place via policy (op>>1)%3, PreferNonEmpty op&1,
//	                request (opCores[a%n], opMem[b%n])
func runIndexOps(t *testing.T, data []byte) {
	type placement struct {
		s    *server
		c, m float64
	}
	class := indexClass()
	servers := makeServers(&class, 9)
	ix := newPoolIndex(servers)
	var live []placement
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		if op&0x80 != 0 {
			if len(live) == 0 {
				continue
			}
			k := (int(a)<<8 | int(b)) % len(live)
			p := live[k]
			unplace(p.s, p.c, p.m)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			c := opCores[int(a)%len(opCores)]
			m := opMem[int(b)%len(opMem)]
			pol := Policy((op >> 1) % 3)
			s := ix.pick(c, m, pol, op&1 == 1)
			if want := pick(servers, c, m, Config{Policy: pol, PreferNonEmpty: op&1 == 1}); s != want {
				t.Fatalf("op %d: pick(%g, %g, %v, %v) index %d, scan %d",
					i/3, c, m, pol, op&1 == 1, srvID(s), srvID(want))
			}
			if s != nil {
				place(s, c, m)
				live = append(live, placement{s, c, m})
			}
		}
		comparePicks(t, ix, servers, opCores[int(b)%len(opCores)], opMem[int(a)%len(opMem)])
	}
	checkOracle(t, ix, servers)
}

func FuzzPlacementIndex(f *testing.F) {
	// Fill, drain, and churn seeds; the fuzzer mutates from here.
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0x01, 0x02, 0x05, 0x02, 0x01, 0x80, 0x00, 0x00})
	f.Add([]byte{0x02, 0x02, 0x03, 0x02, 0x02, 0x03, 0x04, 0x04, 0x04, 0x81, 0x00, 0x01, 0x01, 0x01, 0x01})
	f.Add([]byte{0x05, 0x03, 0x02, 0x05, 0x03, 0x02, 0x80, 0xff, 0xff, 0x00, 0x04, 0x04, 0x03, 0x00, 0x00})
	f.Fuzz(runIndexOps)
}
