package alloc

// Property tests for the placement index against two oracles: the
// reference scan (pick equality on every query) and a naive recompute
// of the index's own invariants (treap membership and ordering per
// occupancy class, done by sorting the live servers). The fuzz harness
// in index_fuzz_test.go drives the same checks from arbitrary byte
// strings.

import (
	"sort"
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/stats"
)

// indexClass is a deliberately small SKU so random workloads collide
// on free-capacity values and exercise every tie-break level.
func indexClass() ServerClass {
	return ServerClass{Name: "ix-test", Cores: 8, Memory: 64, LocalMemory: 64}
}

// opCores/opMem are the request quanta random and fuzzed workloads
// draw from: small discrete values to force ties, plus fractional ones
// (scaled requests) to force non-integral free capacities.
var (
	opCores = []float64{1, 2, 2.2, 3, 5.5}
	opMem   = []float64{4, 8, 8.8, 16, 24}
)

// inOrder appends the subtree's node ids in key order.
func inOrder(ix *poolIndex, n int32, out *[]int32) {
	if n == nilNode {
		return
	}
	inOrder(ix, ix.nodes[n].left, out)
	*out = append(*out, n)
	inOrder(ix, ix.nodes[n].right, out)
}

// checkOracle rebuilds the index's claims naively from the servers —
// which server belongs to which occupancy treap, and in what order —
// and verifies them, then runs the full structural integrity walk.
func checkOracle(t *testing.T, ix *poolIndex, servers []*server) {
	t.Helper()
	want := map[bool][]int32{}
	for _, s := range servers {
		want[s.vms > 0] = append(want[s.vms > 0], s.id)
	}
	for _, ne := range []bool{true, false} {
		ids := want[ne]
		sort.Slice(ids, func(i, j int) bool {
			a, b := servers[ids[i]], servers[ids[j]]
			if a.coresFree != b.coresFree {
				return a.coresFree < b.coresFree
			}
			if a.memFree != b.memFree {
				return a.memFree < b.memFree
			}
			return a.id < b.id
		})
		root := ix.rootE
		if ne {
			root = ix.rootNE
		}
		var got []int32
		inOrder(ix, root, &got)
		if len(got) != len(ids) {
			t.Fatalf("occupancy treap (ne=%v) holds %d servers, oracle says %d", ne, len(got), len(ids))
		}
		for i := range got {
			if got[i] != ids[i] {
				t.Fatalf("occupancy treap (ne=%v) order diverges at %d: index %v, oracle %v", ne, i, got, ids)
			}
		}
	}
	rec := audit.NewRecorder()
	ix.auditIntegrity(rec, "oracle")
	if rec.Count() > 0 {
		t.Fatalf("index integrity violations: %v", rec.Violations())
	}
}

// comparePicks checks every query the simulator issues — all policies,
// both PreferNonEmpty settings, and the two full-node variants —
// against the reference scan, for one request.
func comparePicks(t *testing.T, ix *poolIndex, servers []*server, c, m float64) {
	t.Helper()
	for _, pol := range []Policy{BestFit, FirstFit, WorstFit} {
		for _, prefer := range []bool{false, true} {
			cfg := Config{Policy: pol, PreferNonEmpty: prefer}
			got := ix.pick(c, m, pol, prefer)
			want := pick(servers, c, m, cfg)
			if got != want {
				t.Fatalf("pick(%g, %g, %v, preferNonEmpty=%v): index chose %d, scan chose %d",
					c, m, pol, prefer, srvID(got), srvID(want))
			}
		}
	}
	var wantFit, wantAny *server
	for _, s := range servers {
		if s.vms != 0 {
			continue
		}
		if wantAny == nil {
			wantAny = s
		}
		if wantFit == nil && s.fits(c, m) {
			wantFit = s
		}
	}
	if got := ix.firstEmptyFitting(c, m); got != wantFit {
		t.Fatalf("firstEmptyFitting(%g, %g): index chose %d, scan chose %d", c, m, srvID(got), srvID(wantFit))
	}
	if got := ix.firstEmpty(); got != wantAny {
		t.Fatalf("firstEmpty: index chose %d, scan chose %d", srvID(got), srvID(wantAny))
	}
}

// place commits a placement on s through the detach/mutate/attach
// protocol, exactly as the simulator does.
func place(s *server, c, m float64) {
	s.ix.detach(s)
	s.coresFree -= c
	s.memFree -= m
	s.vms++
	s.ix.attach(s)
}

func unplace(s *server, c, m float64) {
	s.ix.detach(s)
	s.coresFree += c
	s.memFree += m
	s.vms--
	s.ix.attach(s)
}

// TestIndexMatchesOracleRandomOps drives random place/release
// sequences and checks every index query against the scan after each
// mutation, with periodic full-structure oracle checks.
func TestIndexMatchesOracleRandomOps(t *testing.T) {
	type placement struct {
		s    *server
		c, m float64
	}
	for seed := uint64(1); seed <= 6; seed++ {
		r := stats.NewRNG(seed * 7919)
		class := indexClass()
		servers := makeServers(&class, 11)
		ix := newPoolIndex(servers)
		var live []placement
		steps := 600
		if testing.Short() {
			steps = 150
		}
		for step := 0; step < steps; step++ {
			if len(live) > 0 && r.Float64() < 0.45 {
				k := r.Intn(len(live))
				p := live[k]
				unplace(p.s, p.c, p.m)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				c := opCores[r.Intn(len(opCores))]
				m := opMem[r.Intn(len(opMem))]
				pol := Policy(r.Intn(3))
				s := ix.pick(c, m, pol, r.Intn(2) == 0)
				if s != nil {
					place(s, c, m)
					live = append(live, placement{s, c, m})
				}
			}
			comparePicks(t, ix, servers, opCores[step%len(opCores)], opMem[step%len(opMem)])
			if step%40 == 0 {
				comparePicks(t, ix, servers, 0, 0)
				comparePicks(t, ix, servers, 1e9, 1e9)
				checkOracle(t, ix, servers)
			}
		}
		checkOracle(t, ix, servers)
	}
}

// TestAuditCatchesCorruptedIndex is the canary for the index's audit
// hooks: mutating a server behind the index's back must surface both
// as an integrity violation (stale key) and as a pick divergence.
func TestAuditCatchesCorruptedIndex(t *testing.T) {
	class := ServerClass{Name: "corrupt", Cores: 10, Memory: 100, LocalMemory: 100}
	servers := makeServers(&class, 2)
	ix := newPoolIndex(servers)
	place(servers[0], 4, 40)

	// Bypass the index: server 0 now has 1 core free, but the index
	// still believes 6.
	servers[0].coresFree -= 5

	rec := audit.NewRecorder()
	ix.auditIntegrity(rec, "canary")
	if rec.Counts()["alloc/index-integrity"] == 0 {
		t.Fatalf("stale index key not caught: %v", rec.Counts())
	}

	rec = audit.NewRecorder()
	cfg := Config{Policy: BestFit}
	got := pickFrom(rec, ix, servers, 6, 10, cfg)
	if rec.Counts()["alloc/index-divergence"] == 0 {
		t.Fatalf("index/scan divergence not caught (picked %d): %v", srvID(got), rec.Counts())
	}
}

// TestIndexEmptyAndSinglePools covers the degenerate pool sizes the
// simulator hands the index builder.
func TestIndexEmptyAndSinglePools(t *testing.T) {
	if ix := newPoolIndex(nil); ix != nil {
		t.Fatal("empty pool should have no index")
	}
	class := indexClass()
	servers := makeServers(&class, 1)
	ix := newPoolIndex(servers)
	comparePicks(t, ix, servers, 2, 8)
	place(servers[0], 2, 8)
	comparePicks(t, ix, servers, 2, 8)
	comparePicks(t, ix, servers, 8, 64)
	unplace(servers[0], 2, 8)
	checkOracle(t, ix, servers)
}
