package alloc

import (
	"testing"
	"testing/quick"

	"github.com/greensku/gsf/internal/trace"
)

// Property tests on allocation invariants, run against randomly
// parameterised traces and cluster shapes.

func randomScenario(seed uint64) (trace.Trace, Config, error) {
	p := trace.DefaultParams("prop", seed)
	p.HorizonHours = 48
	p.ArrivalsPerHour = 4 + float64(seed%20)
	tr, err := trace.Generate(p)
	if err != nil {
		return trace.Trace{}, Config{}, err
	}
	cfg := Config{
		Base:   ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768},
		NBase:  int(3 + seed%40),
		Green:  ServerClass{Name: "green", Cores: 128, Memory: 1024, LocalMemory: 768, Green: true},
		NGreen: int(seed % 20),
		Policy: Policy(seed % 3),
	}
	cfg.PreferNonEmpty = seed%2 == 0
	return tr, cfg, nil
}

func TestPropertyPlacedPlusRejectedEqualsVMs(t *testing.T) {
	f := func(seed uint64) bool {
		tr, cfg, err := randomScenario(seed)
		if err != nil {
			return false
		}
		res, err := Simulate(tr, cfg, AdoptAll)
		if err != nil {
			return false
		}
		return res.Placed+res.Rejected == len(tr.VMs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDensitiesBounded(t *testing.T) {
	f := func(seed uint64) bool {
		tr, cfg, err := randomScenario(seed)
		if err != nil {
			return false
		}
		res, err := Simulate(tr, cfg, AdoptAll)
		if err != nil {
			return false
		}
		inRange := func(v float64) bool {
			// NaN means the class was never used, which is legal.
			return v != v || (v >= 0 && v <= 1+1e-9)
		}
		return inRange(res.Base.CorePacking) && inRange(res.Base.MemPacking) &&
			inRange(res.Green.CorePacking) && inRange(res.Green.MemPacking) &&
			inRange(res.Base.LocalFitsFrac) && inRange(res.Green.LocalFitsFrac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreServersNeverMoreRejections(t *testing.T) {
	f := func(seed uint64) bool {
		tr, cfg, err := randomScenario(seed)
		if err != nil {
			return false
		}
		small, err := Simulate(tr, cfg, AdoptAll)
		if err != nil {
			return false
		}
		bigger := cfg
		bigger.NBase += 20
		big, err := Simulate(tr, bigger, AdoptAll)
		if err != nil {
			return false
		}
		// Not guaranteed in general bin packing, but holds for the
		// capacity-dominated regimes the sizer operates in; allow a
		// tiny fragmentation wobble.
		return big.Rejected <= small.Rejected+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNoAdoptionLeavesGreenEmpty(t *testing.T) {
	f := func(seed uint64) bool {
		tr, cfg, err := randomScenario(seed)
		if err != nil {
			return false
		}
		res, err := Simulate(tr, cfg, AdoptNone)
		if err != nil {
			return false
		}
		// NaN packing means no green server ever held a VM.
		return res.Green.CorePacking != res.Green.CorePacking
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
