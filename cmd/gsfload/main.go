// Command gsfload drives open-loop load against gsfd and emits a
// machine-readable serving benchmark (BENCH_serve.json, gsf-bench/v1).
// Open-loop means arrivals are scheduled by a fixed-rate clock,
// independent of completions, so a slow server accumulates latency
// instead of silently slowing the generator — the honest way to
// measure a service's shed and tail-latency behaviour.
//
// Two modes:
//
//   - self-drive (default): spins 1 or more in-process gsfd replicas on
//     loopback listeners — sharded via -peers wiring when -replicas > 1 —
//     and drives them. Reproducible anywhere, used by CI.
//   - external (-targets): drives an already-running fleet by URL.
//
// Each run emits one row: achieved QPS, p50/p99 latency, cache-hit and
// shard-forward ratios, and shed (429) counts, plus a latency-over-time
// series (one bucket per -window) so long soaks expose drift — a
// leaking cache or a growing backlog shows up as a rising per-window
// p99 long before it moves the whole-run percentile. -min-qps and
// -max-p99 turn the run into a CI gate.
//
// Usage:
//
//	gsfload                                  # 1-replica and 3-replica rows
//	gsfload -replicas 3 -rate 300 -duration 10s
//	gsfload -duration 10m -window 10s        # long soak, 60-bucket series
//	gsfload -targets http://n1:8080,http://n2:8080
//	gsfload -min-qps 100 -max-p99 0.5        # gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/greensku/gsf/internal/server"
)

type options struct {
	targets     []string
	replicas    []int
	rate        float64
	duration    time.Duration
	window      time.Duration
	keys        int
	maxInflight int
	out         string
	minQPS      float64
	maxP99      float64
	workers     int
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("gsfload", flag.ContinueOnError)
	var o options
	targets := fs.String("targets", "", "comma-separated gsfd base URLs (external mode; default self-drive)")
	replicas := fs.String("replicas", "1,3", "comma-separated replica counts to self-drive, one row each")
	fs.Float64Var(&o.rate, "rate", 200, "open-loop arrival rate in requests/s")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "load duration per scenario")
	fs.DurationVar(&o.window, "window", time.Second, "bucket width for the latency-over-time series")
	fs.IntVar(&o.keys, "keys", 64, "distinct request keys (smaller = more cache hits)")
	fs.IntVar(&o.maxInflight, "maxinflight", 512, "safety cap on concurrent requests")
	fs.StringVar(&o.out, "out", "BENCH_serve.json", "artifact path ('-' for stdout)")
	fs.Float64Var(&o.minQPS, "min-qps", 0, "exit non-zero unless every row reaches this QPS (0 disables)")
	fs.Float64Var(&o.maxP99, "max-p99", 0, "exit non-zero if any row's p99 exceeds this many seconds (0 disables)")
	fs.IntVar(&o.workers, "workers", 0, "workers per self-driven replica (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *targets != "" {
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				o.targets = append(o.targets, u)
			}
		}
	}
	for _, r := range strings.Split(*replicas, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(r, "%d", &n); err != nil || n < 1 {
			return o, fmt.Errorf("bad -replicas entry %q", r)
		}
		o.replicas = append(o.replicas, n)
	}
	if o.rate <= 0 {
		return o, fmt.Errorf("-rate must be positive")
	}
	if o.window <= 0 {
		return o, fmt.Errorf("-window must be positive")
	}
	return o, nil
}

// serveRow is one scenario's results in the gsf-bench/v1 artifact.
type serveRow struct {
	Scenario     string  `json:"scenario"`
	Replicas     int     `json:"replicas"`
	OfferedQPS   float64 `json:"offered_qps"`
	DurationSecs float64 `json:"duration_seconds"`
	Sent         int     `json:"sent"`
	Completed    int     `json:"completed"`
	QPS          float64 `json:"qps"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	CacheHits    int     `json:"cache_hits"`
	HitRatio     float64 `json:"cache_hit_ratio"`
	Forwarded    int     `json:"forwarded"`
	ForwardRatio float64 `json:"forward_ratio"`
	Shed         int     `json:"shed_429"`
	Errors       int     `json:"errors"`
	// Series is the latency-over-time breakdown: one bucket per -window
	// of run time, keyed by completion time. Long soaks read it as a
	// drift chart; short CI runs carry a handful of buckets.
	Series []windowRow `json:"series,omitempty"`
}

// windowAgg accumulates one time bucket's raw observations while the
// collector drains results.
type windowAgg struct {
	completed, shed, errors int
	latencies               []float64
}

// windowRow is one time bucket of a scenario's series.
type windowRow struct {
	StartSeconds float64 `json:"start_seconds"`
	Completed    int     `json:"completed"`
	QPS          float64 `json:"qps"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	Shed         int     `json:"shed_429"`
	Errors       int     `json:"errors"`
}

type artifact struct {
	Schema string     `json:"schema"`
	Serve  []serveRow `json:"serve"`
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gsfload:", err)
		os.Exit(1)
	}
}

func run(o options, stdout io.Writer) error {
	var rows []serveRow
	if len(o.targets) > 0 {
		row, err := drive(o, fmt.Sprintf("external-%d", len(o.targets)), o.targets)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	} else {
		for _, n := range o.replicas {
			urls, shutdown, err := selfFleet(n, o.workers)
			if err != nil {
				return err
			}
			name := "single"
			if n > 1 {
				name = fmt.Sprintf("shard%d", n)
			}
			row, err := drive(o, name, urls)
			shutdown()
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}

	art := artifact{Schema: "gsf-bench/v1", Serve: rows}
	body, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if o.out == "-" {
		stdout.Write(body)
	} else {
		if err := os.WriteFile(o.out, body, 0o644); err != nil {
			return err
		}
	}
	for _, row := range rows {
		fmt.Fprintf(stdout, "%-10s replicas=%d qps=%.0f p50=%.4fs p99=%.4fs hit=%.2f forward=%.2f shed=%d errors=%d\n",
			row.Scenario, row.Replicas, row.QPS, row.P50Seconds, row.P99Seconds,
			row.HitRatio, row.ForwardRatio, row.Shed, row.Errors)
	}
	return gate(o, rows)
}

func gate(o options, rows []serveRow) error {
	for _, row := range rows {
		if o.minQPS > 0 && row.QPS < o.minQPS {
			return fmt.Errorf("scenario %s: qps %.1f below gate %.1f", row.Scenario, row.QPS, o.minQPS)
		}
		if o.maxP99 > 0 && row.P99Seconds > o.maxP99 {
			return fmt.Errorf("scenario %s: p99 %.4fs above gate %.4fs", row.Scenario, row.P99Seconds, o.maxP99)
		}
	}
	return nil
}

// selfFleet starts n sharded in-process replicas on loopback listeners
// and returns their URLs and a shutdown function. Listeners are bound
// before any replica is built so every Config can carry the full
// membership.
func selfFleet(n, workers int) ([]string, func(), error) {
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	var servers []*server.Server
	var https []*http.Server
	for i := range listeners {
		cfg := server.Config{
			Workers: workers,
			// Deep queue: open-loop load measures latency under backlog,
			// and shed counts should come from deliberate overload runs,
			// not a default-sized queue.
			QueueDepth: 4096,
			Logger:     log,
		}
		if n > 1 {
			cfg.SelfURL = urls[i]
			cfg.Peers = urls
		}
		s, err := server.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		servers = append(servers, s)
		hs := &http.Server{Handler: s.Handler()}
		https = append(https, hs)
		go hs.Serve(listeners[i])
	}
	shutdown := func() {
		for _, hs := range https {
			hs.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	return urls, shutdown, nil
}

// sample is one completed request's observation. at is the completion
// offset from the scenario start, used to bucket the sample into the
// latency-over-time series.
type sample struct {
	latency   time.Duration
	at        time.Duration
	status    int
	cacheHit  bool
	forwarded bool
	err       bool
}

// drive runs the open-loop generator against targets for o.duration and
// folds the observations into one row.
func drive(o options, scenario string, targets []string) (serveRow, error) {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        o.maxInflight,
			MaxIdleConnsPerHost: o.maxInflight,
		},
	}

	interval := time.Duration(float64(time.Second) / o.rate)
	deadline := time.Now().Add(o.duration)
	results := make(chan sample, o.maxInflight)
	var wg sync.WaitGroup
	inflight := make(chan struct{}, o.maxInflight)

	// The collector drains results concurrently with the generator so
	// no completion ever blocks the arrival clock. Each sample also
	// lands in a time bucket for the latency-over-time series.
	row := serveRow{Scenario: scenario, Replicas: len(targets), OfferedQPS: o.rate}
	var latencies []float64
	windows := map[int]*windowAgg{}
	bucket := func(at time.Duration) *windowAgg {
		i := 0
		if o.window > 0 {
			i = int(at / o.window)
		}
		w := windows[i]
		if w == nil {
			w = &windowAgg{}
			windows[i] = w
		}
		return w
	}
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for s := range results {
			w := bucket(s.at)
			if s.err {
				row.Errors++
				w.errors++
				continue
			}
			switch {
			case s.status == http.StatusOK:
				row.Completed++
				w.completed++
				lat := s.latency.Seconds()
				latencies = append(latencies, lat)
				w.latencies = append(w.latencies, lat)
				if s.cacheHit {
					row.CacheHits++
				}
				if s.forwarded {
					row.Forwarded++
				}
			case s.status == http.StatusTooManyRequests:
				row.Shed++
				w.shed++
			default:
				row.Errors++
				w.errors++
			}
		}
	}()

	sent := 0
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := start; now.Before(deadline); now = <-ticker.C {
		// Open loop: the tick fires regardless of completions. The
		// inflight cap only guards against unbounded goroutine growth;
		// hitting it records an error sample instead of blocking the
		// clock.
		select {
		case inflight <- struct{}{}:
		default:
			results <- sample{err: true, at: time.Since(start)}
			sent++
			continue
		}
		path, body := requestFor(sent, o.keys)
		target := targets[sent%len(targets)]
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			s := issue(client, target, path, body)
			s.at = time.Since(start)
			results <- s
		}()
	}
	elapsed := time.Since(start)
	wg.Wait()
	total := time.Since(start) // includes the in-flight drain past the deadline
	close(results)
	<-collected

	row.DurationSecs = elapsed.Seconds()
	row.Sent = sent
	if row.Completed > 0 {
		row.QPS = float64(row.Completed) / elapsed.Seconds()
		sort.Float64s(latencies)
		row.P50Seconds = percentile(latencies, 0.50)
		row.P99Seconds = percentile(latencies, 0.99)
		row.HitRatio = float64(row.CacheHits) / float64(row.Completed)
		row.ForwardRatio = float64(row.Forwarded) / float64(row.Completed)
	}
	row.Series = buildSeries(windows, o.window, total)
	return row, nil
}

// buildSeries folds the collector's time buckets into the artifact's
// latency-over-time series, in bucket order. The final bucket's rate
// uses only the span the run actually covered, so a soak ending
// mid-window does not read as a throughput dip.
func buildSeries(windows map[int]*windowAgg, width, total time.Duration) []windowRow {
	if width <= 0 || len(windows) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(windows))
	for i := range windows {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	series := make([]windowRow, 0, len(idxs))
	for _, i := range idxs {
		w := windows[i]
		wr := windowRow{
			StartSeconds: float64(i) * width.Seconds(),
			Completed:    w.completed,
			Shed:         w.shed,
			Errors:       w.errors,
		}
		span := width.Seconds()
		if rem := total.Seconds() - wr.StartSeconds; rem > 0 && rem < span {
			span = rem
		}
		if w.completed > 0 {
			wr.QPS = float64(w.completed) / span
			sort.Float64s(w.latencies)
			wr.P50Seconds = percentile(w.latencies, 0.50)
			wr.P99Seconds = percentile(w.latencies, 0.99)
		}
		series = append(series, wr)
	}
	return series
}

// requestFor maps a request sequence number onto the key space: an
// alternating percore/savings mix over o.keys distinct carbon
// intensities, so a warm cache serves most of the run.
func requestFor(seq, keys int) (string, string) {
	// seq/2 decorrelates the key index from the endpoint choice so both
	// endpoints cycle through the full keyspace.
	ci := 0.05 + float64((seq/2)%keys)*0.001
	if seq%2 == 0 {
		return "/v1/percore", fmt.Sprintf(`{"sku":"GreenSKU-Full","ci":%g}`, ci)
	}
	return "/v1/savings", fmt.Sprintf(`{"sku":"GreenSKU-CXL","ci":%g}`, ci)
}

func issue(client *http.Client, target, path, body string) sample {
	start := time.Now()
	req, err := http.NewRequest(http.MethodPost, target+path, strings.NewReader(body))
	if err != nil {
		return sample{err: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return sample{err: true}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return sample{
		latency:   time.Since(start),
		status:    resp.StatusCode,
		cacheHit:  resp.Header.Get("X-Cache") == "hit",
		forwarded: resp.Header.Get("X-GSF-Shard") == "forwarded",
	}
}

// percentile reads the p-th percentile from ascending sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
