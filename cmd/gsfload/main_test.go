package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.targets) != 0 {
		t.Errorf("targets %v, want self-drive by default", o.targets)
	}
	if len(o.replicas) != 2 || o.replicas[0] != 1 || o.replicas[1] != 3 {
		t.Errorf("replicas %v, want [1 3]", o.replicas)
	}
	if o.rate != 200 || o.duration != 5*time.Second || o.window != time.Second {
		t.Errorf("load shape %+v", o)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	o, err := parseFlags([]string{
		"-targets", "http://a:1, http://b:2", "-rate", "50",
		"-duration", "2s", "-keys", "8", "-min-qps", "10", "-max-p99", "0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.targets) != 2 || o.targets[1] != "http://b:2" {
		t.Errorf("targets %v", o.targets)
	}
	if o.rate != 50 || o.keys != 8 || o.minQPS != 10 || o.maxP99 != 0.5 {
		t.Errorf("parsed %+v", o)
	}
}

func TestParseFlagsRejectsBadInput(t *testing.T) {
	if _, err := parseFlags([]string{"-rate", "0"}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := parseFlags([]string{"-replicas", "0"}); err == nil {
		t.Error("zero replica count accepted")
	}
	if _, err := parseFlags([]string{"extra"}); err == nil {
		t.Error("positional argument accepted")
	}
	if _, err := parseFlags([]string{"-window", "0s"}); err == nil {
		t.Error("zero series window accepted")
	}
}

func TestGate(t *testing.T) {
	rows := []serveRow{{Scenario: "single", QPS: 100, P99Seconds: 0.2}}
	if err := gate(options{minQPS: 50, maxP99: 0.5}, rows); err != nil {
		t.Errorf("passing gates failed: %v", err)
	}
	if err := gate(options{minQPS: 200}, rows); err == nil {
		t.Error("QPS gate did not trip")
	}
	if err := gate(options{maxP99: 0.1}, rows); err == nil {
		t.Error("p99 gate did not trip")
	}
}

// TestSelfDriveSmoke runs a short real load against 1- and 2-replica
// in-process fleets and checks the artifact shape: a row per scenario,
// completions, cache hits once the keyspace wraps, and forwards only
// in the sharded run.
func TestSelfDriveSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	o := options{
		replicas:    []int{1, 2},
		rate:        200,
		duration:    1500 * time.Millisecond,
		keys:        16,
		maxInflight: 256,
		out:         out,
		workers:     2,
	}
	var stdout bytes.Buffer
	if err := run(o, &stdout); err != nil {
		t.Fatalf("run: %v\n%s", err, stdout.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != "gsf-bench/v1" {
		t.Errorf("schema %q", art.Schema)
	}
	if len(art.Serve) != 2 {
		t.Fatalf("got %d rows, want 2", len(art.Serve))
	}
	single, sharded := art.Serve[0], art.Serve[1]
	if single.Scenario != "single" || single.Replicas != 1 {
		t.Errorf("row 0 %+v, want single/1", single)
	}
	if sharded.Scenario != "shard2" || sharded.Replicas != 2 {
		t.Errorf("row 1 %+v, want shard2/2", sharded)
	}
	for _, row := range art.Serve {
		if row.Completed == 0 || row.QPS == 0 {
			t.Errorf("%s: no completed requests: %+v", row.Scenario, row)
		}
		if row.CacheHits == 0 {
			t.Errorf("%s: no cache hits with a 16-key space", row.Scenario)
		}
		if row.P99Seconds < row.P50Seconds {
			t.Errorf("%s: p99 %v below p50 %v", row.Scenario, row.P99Seconds, row.P50Seconds)
		}
	}
	if single.Forwarded != 0 {
		t.Errorf("single replica forwarded %d requests", single.Forwarded)
	}
	if sharded.Forwarded == 0 {
		t.Error("sharded run never forwarded despite round-robin targets")
	}
}

func TestBuildSeries(t *testing.T) {
	windows := map[int]*windowAgg{
		0: {completed: 4, latencies: []float64{0.01, 0.02, 0.03, 0.04}},
		2: {completed: 1, shed: 2, errors: 1, latencies: []float64{0.05}},
	}
	got := buildSeries(windows, time.Second, 2500*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("%d rows, want 2 (empty buckets are not invented)", len(got))
	}
	w0, w2 := got[0], got[1]
	if w0.StartSeconds != 0 || w0.Completed != 4 || w0.QPS != 4 {
		t.Errorf("bucket 0 %+v", w0)
	}
	if w0.P50Seconds != 0.02 || w0.P99Seconds != 0.03 {
		t.Errorf("bucket 0 percentiles %+v", w0)
	}
	// The run covered only half of bucket 2: its rate uses the real span.
	if w2.StartSeconds != 2 || w2.QPS != 2 || w2.Shed != 2 || w2.Errors != 1 {
		t.Errorf("bucket 2 %+v", w2)
	}
	if buildSeries(nil, time.Second, time.Second) != nil {
		t.Error("empty run produced a series")
	}
	if buildSeries(windows, 0, time.Second) != nil {
		t.Error("zero window produced a series")
	}
}

// TestLongSoakSeriesSmoke drives a short soak against one in-process
// replica and checks the latency-over-time series: buckets in time
// order, totals that reconcile with the whole-run row, and sane
// per-bucket percentiles.
func TestLongSoakSeriesSmoke(t *testing.T) {
	urls, shutdown, err := selfFleet(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	o := options{
		rate:        300,
		duration:    1200 * time.Millisecond,
		window:      300 * time.Millisecond,
		keys:        8,
		maxInflight: 256,
	}
	row, err := drive(o, "soak", urls)
	if err != nil {
		t.Fatal(err)
	}
	if row.Completed == 0 {
		t.Fatalf("no completed requests: %+v", row)
	}
	if len(row.Series) < 3 {
		t.Fatalf("soak produced %d series buckets, want >= 3: %+v", len(row.Series), row.Series)
	}
	var completed, shed, errors int
	prev := -1.0
	for _, w := range row.Series {
		if w.StartSeconds <= prev {
			t.Errorf("bucket starts out of order: %v after %v", w.StartSeconds, prev)
		}
		prev = w.StartSeconds
		completed += w.Completed
		shed += w.Shed
		errors += w.Errors
		if w.Completed > 0 {
			if w.QPS <= 0 {
				t.Errorf("bucket at %vs completed %d with qps %v", w.StartSeconds, w.Completed, w.QPS)
			}
			if w.P99Seconds < w.P50Seconds {
				t.Errorf("bucket at %vs: p99 %v below p50 %v", w.StartSeconds, w.P99Seconds, w.P50Seconds)
			}
		}
	}
	if completed != row.Completed || shed != row.Shed || errors != row.Errors {
		t.Errorf("series sums (%d ok, %d shed, %d err) != row (%d, %d, %d)",
			completed, shed, errors, row.Completed, row.Shed, row.Errors)
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile %v", got)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 0.5); got != 5 {
		t.Errorf("p50 %v, want 5", got)
	}
	if got := percentile(s, 0.99); got != 9 {
		t.Errorf("p99 %v, want 9", got)
	}
}

func TestRequestForCoversMixAndKeyspace(t *testing.T) {
	paths := map[string]bool{}
	bodies := map[string]bool{}
	for i := 0; i < 64; i++ {
		p, b := requestFor(i, 8)
		paths[p] = true
		bodies[b] = true
	}
	if len(paths) != 2 {
		t.Errorf("mix covered %d endpoints, want 2", len(paths))
	}
	// 8 keys x 2 endpoints = 16 distinct requests.
	if len(bodies) != 16 {
		t.Errorf("%d distinct bodies, want 16", len(bodies))
	}
}
