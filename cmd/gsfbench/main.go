// Command gsfbench measures the simulators' hot paths and emits
// machine-readable perf artifacts. The alloc suite (BENCH_alloc.json)
// replays the 35-trace allocation sweep through the indexed allocator
// and the reference linear scan, verifying they are decision-identical
// and gating on a minimum speedup. The queue suite (BENCH_queue.json)
// runs the Table III profiling sweep over the green-SKU catalog through
// the fast queueing kernel (ziggurat sampling, single-sort statistics,
// SLO memoization) and through a reference-shaped run approximating the
// pre-optimization kernel, verifying the factor matrices are identical
// and gating on the kernel speedup.
//
// Usage:
//
//	gsfbench                                    # both suites, write artifacts
//	gsfbench -suite alloc -min-speedup 2        # CI gate on the placement index
//	gsfbench -suite queue -queue-min-speedup 2  # CI gate on the queueing kernel
//	gsfbench -suite queue -queue-min-batch-speedup 2 -queue-min-cumulative 8
//	                                            # CI gates on the batched kernel
//	gsfbench -suite scale -scale-min-speedup 2  # CI gate on the columnar fleet
//	gsfbench -suite alloc -scale-servers 1000000  # grow the artifact's scale table
//	gsfbench -suite alloc -shards 3             # sharded multi-pool replay
//	gsfbench -quick                             # small smoke run
//	gsfbench -suite queue -cpuprofile cpu.out -memprofile mem.out
//	                                            # profile the kernel sweep
//
// The scale suite replays the columnar streaming path (GSFB decode +
// virgin-frontier fleet) against Config.ReferenceLayout at large fleet
// sizes, verifying decision identity; standalone it writes
// BENCH_scale.json, and with -scale-servers the alloc suite embeds the
// same row in BENCH_alloc.json's "scale" table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/greensku/gsf/internal/experiments"
)

func main() {
	suite := flag.String("suite", "all", "which benchmarks to run: all, alloc, queue, or scale")
	servers := flag.Int("servers", 10000, "servers per class in the allocation sweep")
	traces := flag.Int("traces", 35, "production-suite traces to replay (max 35)")
	out := flag.String("out", "BENCH_alloc.json", "alloc artifact path ('-' for stdout)")
	qout := flag.String("qout", "BENCH_queue.json", "queue artifact path ('-' for stdout)")
	sout := flag.String("scale-out", "BENCH_scale.json", "scale artifact path for -suite scale ('-' for stdout)")
	minSpeedup := flag.Float64("min-speedup", 0, "exit non-zero unless indexed/reference speedup reaches this (0 disables)")
	queueMinSpeedup := flag.Float64("queue-min-speedup", 0, "exit non-zero unless the queueing kernel fast/reference speedup reaches this (0 disables)")
	queueMinBatchSpeedup := flag.Float64("queue-min-batch-speedup", 0, "exit non-zero unless the batched/fast kernel speedup reaches this (0 disables)")
	queueMinCumulative := flag.Float64("queue-min-cumulative", 0, "exit non-zero unless the batched/reference cumulative speedup reaches this (0 disables)")
	scaleServers := flag.Int("scale-servers", 0, "servers per class in the scale bench (0 skips it in the alloc suite; -suite scale defaults to 1000000)")
	scaleTraces := flag.Int("scale-traces", 6, "production-suite traces in the scale bench")
	scaleMinSpeedup := flag.Float64("scale-min-speedup", 0, "exit non-zero unless the columnar/reference-layout speedup reaches this (0 disables)")
	qServers := flag.Int("qservers", 64, "queueing curve benchmark parallelism")
	qSteps := flag.Int("qsteps", 8, "queueing curve load points")
	qRequests := flag.Int("qrequests", 0, "requests per simulation in the queue suite (0 = paper default)")
	shards := flag.Int("shards", 0, "replay the alloc sweep through the pool-sharded pipeline with this many shards (0 = single-pool replay)")
	seed := flag.Uint64("seed", 42, "queueing benchmark seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	quick := flag.Bool("quick", false, "small smoke run (4 traces, 500 servers, 4 curve points, short simulations)")
	flag.Parse()

	if *quick {
		*traces, *servers, *qSteps, *scaleTraces = 4, 500, 4, 2
		if *scaleServers > 0 || *suite == "scale" {
			*scaleServers = 20000
		}
		if *qRequests == 0 {
			*qRequests = 4000
		}
	}
	switch *suite {
	case "all", "alloc", "queue", "scale":
	default:
		fmt.Fprintf(os.Stderr, "gsfbench: unknown suite %q (want all, alloc, queue, or scale)\n", *suite)
		os.Exit(2)
	}
	if *suite == "scale" && *scaleServers <= 0 {
		*scaleServers = 1000000
	}
	var cpuf *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsfbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gsfbench:", err)
			os.Exit(1)
		}
		cpuf = f
	}
	err := run(*suite, *servers, *traces, *out, *qout, *sout, *minSpeedup, *queueMinSpeedup, *queueMinBatchSpeedup, *queueMinCumulative, *scaleMinSpeedup, *scaleServers, *scaleTraces, *qServers, *qSteps, *qRequests, *shards, *seed)
	if cpuf != nil {
		pprof.StopCPUProfile()
		if cerr := cpuf.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if *memprofile != "" {
		if perr := writeMemProfile(*memprofile); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsfbench:", err)
		os.Exit(1)
	}
}

// writeMemProfile snapshots the allocation profile after the run.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // flush recent allocations into the profile
	werr := pprof.WriteHeapProfile(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func run(suite string, servers, traces int, out, qout, sout string, minSpeedup, queueMinSpeedup, queueMinBatchSpeedup, queueMinCumulative, scaleMinSpeedup float64, scaleServers, scaleTraces, qServers, qSteps, qRequests, shards int, seed uint64) error {
	ctx := context.Background()
	if suite == "all" || suite == "alloc" {
		if err := runAlloc(ctx, servers, traces, out, minSpeedup, scaleMinSpeedup, scaleServers, scaleTraces, qServers, qSteps, shards, seed); err != nil {
			return err
		}
	}
	if suite == "all" || suite == "queue" {
		if err := runQueue(ctx, qout, queueMinSpeedup, queueMinBatchSpeedup, queueMinCumulative, qRequests, seed); err != nil {
			return err
		}
	}
	if suite == "scale" {
		if err := runScale(ctx, sout, scaleMinSpeedup, scaleServers, scaleTraces); err != nil {
			return err
		}
	}
	return nil
}

func runAlloc(ctx context.Context, servers, traces int, out string, minSpeedup, scaleMinSpeedup float64, scaleServers, scaleTraces, qServers, qSteps, shards int, seed uint64) error {
	alloc, err := experiments.AllocSweepBench(ctx, experiments.AllocBenchOptions{
		Traces:          traces,
		ServersPerClass: servers,
		Shards:          shards,
	})
	if err != nil {
		return err
	}
	fmt.Printf("alloc sweep: %d traces, %d VMs, %d servers/class (%s, %d shards)\n",
		alloc.Traces, alloc.VMs, alloc.ServersPerClass, alloc.Policy, alloc.Shards)
	fmt.Printf("  indexed   %8.3fs\n", alloc.IndexedSeconds)
	fmt.Printf("  reference %8.3fs\n", alloc.ReferenceSeconds)
	fmt.Printf("  speedup   %8.2fx   decision-identical: %v\n", alloc.Speedup, alloc.DecisionIdentical)

	queue, err := experiments.QueueBench(experiments.QueueBenchOptions{
		Servers: qServers, Steps: qSteps, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("queueing curve: %d servers, %d points in %.3fs\n", queue.Servers, queue.Steps, queue.Seconds)

	art := experiments.BenchArtifact{Alloc: alloc, Queueing: queue}
	var scale experiments.AllocScaleResult
	if scaleServers > 0 {
		scale, err = runScaleBench(ctx, scaleServers, scaleTraces)
		if err != nil {
			return err
		}
		art.Scale = append(art.Scale, scale)
	}
	if err := writeTo(out, func(f *os.File) error { return experiments.WriteBenchArtifact(f, art) }); err != nil {
		return err
	}

	if !alloc.DecisionIdentical {
		return fmt.Errorf("indexed and reference allocators diverged — the placement index is wrong")
	}
	if minSpeedup > 0 && alloc.Speedup < minSpeedup {
		return fmt.Errorf("indexed path speedup %.2fx below the %.2fx gate", alloc.Speedup, minSpeedup)
	}
	if scaleServers > 0 {
		return gateScale(scale, scaleMinSpeedup)
	}
	return nil
}

// runScaleBench runs the large-fleet columnar-vs-reference-layout
// replay and prints its measurement.
func runScaleBench(ctx context.Context, scaleServers, scaleTraces int) (experiments.AllocScaleResult, error) {
	scale, err := experiments.AllocScaleBench(ctx, experiments.AllocScaleOptions{
		Traces:          scaleTraces,
		ServersPerClass: scaleServers,
	})
	if err != nil {
		return experiments.AllocScaleResult{}, err
	}
	fmt.Printf("scale replay: %d traces, %d VMs, %d servers/class (%s)\n",
		scale.Traces, scale.VMs, scale.ServersPerClass, scale.Policy)
	fmt.Printf("  columnar  %8.3fs   (streaming GSFB decode)\n", scale.ColumnarSeconds)
	fmt.Printf("  reference %8.3fs   (struct layout)\n", scale.ReferenceSeconds)
	fmt.Printf("  speedup   %8.2fx   decision-identical: %v\n", scale.Speedup, scale.DecisionIdentical)
	return scale, nil
}

func gateScale(scale experiments.AllocScaleResult, scaleMinSpeedup float64) error {
	if !scale.DecisionIdentical {
		return fmt.Errorf("columnar and reference-layout replays diverged — the columnar fleet is wrong")
	}
	if scaleMinSpeedup > 0 && scale.Speedup < scaleMinSpeedup {
		return fmt.Errorf("columnar replay speedup %.2fx below the %.2fx gate", scale.Speedup, scaleMinSpeedup)
	}
	return nil
}

func runScale(ctx context.Context, sout string, scaleMinSpeedup float64, scaleServers, scaleTraces int) error {
	scale, err := runScaleBench(ctx, scaleServers, scaleTraces)
	if err != nil {
		return err
	}
	art := experiments.ScaleArtifact{Scale: []experiments.AllocScaleResult{scale}}
	if err := writeTo(sout, func(f *os.File) error { return experiments.WriteScaleArtifact(f, art) }); err != nil {
		return err
	}
	return gateScale(scale, scaleMinSpeedup)
}

func runQueue(ctx context.Context, qout string, queueMinSpeedup, queueMinBatchSpeedup, queueMinCumulative float64, qRequests int, seed uint64) error {
	kernel, err := experiments.QueueKernelBench(ctx, experiments.QueueKernelBenchOptions{
		Requests: qRequests,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("queue kernel: TableIII over %d SKUs, %d cells, %d requests/run\n",
		len(kernel.SKUs), kernel.Cells, kernel.Requests)
	fmt.Printf("  batch     %8.3fs   (SLO memo: %d hits / %d misses)\n",
		kernel.BatchSeconds, kernel.SLOCacheHits, kernel.SLOCacheMisses)
	fmt.Printf("  fast      %8.3fs   batch speedup %.2fx\n", kernel.FastSeconds, kernel.BatchSpeedup)
	fmt.Printf("  reference %8.3fs   fast speedup %.2fx\n", kernel.ReferenceSeconds, kernel.Speedup)
	fmt.Printf("  cumulative %7.2fx   factors-identical: %v\n", kernel.CumulativeSpeedup, kernel.FactorsIdentical)
	fmt.Printf("  knee search: frac %.3f in %d evals (fixed-step: %d) %.3fs\n",
		kernel.Knee.KneeFrac, kernel.Knee.Evals, kernel.Knee.FixedStepEvals, kernel.Knee.Seconds)
	fmt.Printf("  fluid knee:  frac %.3f in %d sims + %d fluid %.3fs\n",
		kernel.Knee.FluidKneeFrac, kernel.Knee.FluidSimEvals, kernel.Knee.FluidEvals, kernel.Knee.FluidSeconds)

	art := experiments.QueueArtifact{Kernel: kernel}
	if err := writeTo(qout, func(f *os.File) error { return experiments.WriteQueueArtifact(f, art) }); err != nil {
		return err
	}

	if !kernel.FactorsIdentical {
		return fmt.Errorf("kernel arms produced different scaling factors — a fast path is wrong")
	}
	if queueMinSpeedup > 0 && kernel.Speedup < queueMinSpeedup {
		return fmt.Errorf("queueing kernel speedup %.2fx below the %.2fx gate", kernel.Speedup, queueMinSpeedup)
	}
	if queueMinBatchSpeedup > 0 && kernel.BatchSpeedup < queueMinBatchSpeedup {
		return fmt.Errorf("batched kernel speedup %.2fx below the %.2fx gate", kernel.BatchSpeedup, queueMinBatchSpeedup)
	}
	if queueMinCumulative > 0 && kernel.CumulativeSpeedup < queueMinCumulative {
		return fmt.Errorf("cumulative kernel speedup %.2fx below the %.2fx gate", kernel.CumulativeSpeedup, queueMinCumulative)
	}
	return nil
}

// writeTo writes an artifact to path ('-' means stdout).
func writeTo(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		fmt.Printf("wrote %s\n", path)
	}
	return werr
}
