// Command gsfbench measures the simulators' hot paths and emits a
// machine-readable perf artifact (BENCH_alloc.json): the 35-trace
// allocation sweep through the indexed allocator and the reference
// linear scan, plus the queueing saturation curve. It verifies the two
// allocators are decision-identical on every trace and can gate on a
// minimum indexed-vs-reference speedup, which is how CI fails a PR
// that regresses the placement index.
//
// Usage:
//
//	gsfbench                                    # full sweep, write BENCH_alloc.json
//	gsfbench -servers 10000 -min-speedup 2      # CI gate
//	gsfbench -quick                             # small smoke run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/greensku/gsf/internal/experiments"
)

func main() {
	servers := flag.Int("servers", 10000, "servers per class in the allocation sweep")
	traces := flag.Int("traces", 35, "production-suite traces to replay (max 35)")
	out := flag.String("out", "BENCH_alloc.json", "artifact path ('-' for stdout)")
	minSpeedup := flag.Float64("min-speedup", 0, "exit non-zero unless indexed/reference speedup reaches this (0 disables)")
	qServers := flag.Int("qservers", 64, "queueing benchmark parallelism")
	qSteps := flag.Int("qsteps", 8, "queueing curve load points")
	seed := flag.Uint64("seed", 42, "queueing benchmark seed")
	quick := flag.Bool("quick", false, "small smoke run (4 traces, 500 servers, 4 curve points)")
	flag.Parse()

	if *quick {
		*traces, *servers, *qSteps = 4, 500, 4
	}
	if err := run(*servers, *traces, *out, *minSpeedup, *qServers, *qSteps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gsfbench:", err)
		os.Exit(1)
	}
}

func run(servers, traces int, out string, minSpeedup float64, qServers, qSteps int, seed uint64) error {
	ctx := context.Background()
	alloc, err := experiments.AllocSweepBench(ctx, experiments.AllocBenchOptions{
		Traces:          traces,
		ServersPerClass: servers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("alloc sweep: %d traces, %d VMs, %d servers/class (%s)\n",
		alloc.Traces, alloc.VMs, alloc.ServersPerClass, alloc.Policy)
	fmt.Printf("  indexed   %8.3fs\n", alloc.IndexedSeconds)
	fmt.Printf("  reference %8.3fs\n", alloc.ReferenceSeconds)
	fmt.Printf("  speedup   %8.2fx   decision-identical: %v\n", alloc.Speedup, alloc.DecisionIdentical)

	queue, err := experiments.QueueBench(experiments.QueueBenchOptions{
		Servers: qServers, Steps: qSteps, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("queueing curve: %d servers, %d points in %.3fs\n", queue.Servers, queue.Steps, queue.Seconds)

	art := experiments.BenchArtifact{Alloc: alloc, Queueing: queue}
	if out == "-" {
		err = experiments.WriteBenchArtifact(os.Stdout, art)
	} else {
		var f *os.File
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		werr := experiments.WriteBenchArtifact(f, art)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		err = werr
		if err == nil {
			fmt.Printf("wrote %s\n", out)
		}
	}
	if err != nil {
		return err
	}

	if !alloc.DecisionIdentical {
		return fmt.Errorf("indexed and reference allocators diverged — the placement index is wrong")
	}
	if minSpeedup > 0 && alloc.Speedup < minSpeedup {
		return fmt.Errorf("indexed path speedup %.2fx below the %.2fx gate", alloc.Speedup, minSpeedup)
	}
	return nil
}
