package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "demo", 7, 48, 12, "", false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace demo", "mean cores", "peak demand"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var b strings.Builder
	if err := run(&b, "demo", 7, 48, 12, path, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("CSV has only %d lines", len(lines))
	}
	if lines[0] != "id,arrive_h,depart_h,cores,memory_gb,gen,full_node,app,max_mem_frac,deferrable,slack_h" {
		t.Fatalf("unexpected header: %s", lines[0])
	}
}

func TestSuite(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", 0, 0, 0, "", true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "prod-00") || !strings.Contains(out, "prod-34") {
		t.Errorf("suite summary incomplete:\n%s", out)
	}
}

func TestInvalidParams(t *testing.T) {
	if err := run(&strings.Builder{}, "x", 1, 0, 10, "", false); err == nil {
		t.Fatal("accepted zero horizon")
	}
}
