package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/trace"
)

func TestSummary(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "demo", 7, 48, 12, "", "", "", "", false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace demo", "mean cores", "peak demand"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var b strings.Builder
	if err := run(&b, "demo", 7, 48, 12, path, "", "", "", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("CSV has only %d lines", len(lines))
	}
	if lines[0] != "id,arrive_h,depart_h,cores,memory_gb,gen,full_node,app,max_mem_frac,deferrable,slack_h" {
		t.Fatalf("unexpected header: %s", lines[0])
	}
}

func TestBinaryExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.gsfb")
	var b strings.Builder
	if err := run(&b, "demo", 7, 48, 12, "", path, "", "", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("GSFB")) {
		t.Fatalf("binary export missing GSFB magic: % x", data[:8])
	}
	tr, err := trace.ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("exported binary does not decode: %v", err)
	}
	if len(tr.VMs) < 100 {
		t.Fatalf("binary trace has only %d VMs", len(tr.VMs))
	}
}

// TestConvertRoundTrip drives the converter both ways: CSV -> GSFB ->
// CSV must reproduce the CSV bytes exactly (CSV rendering is
// deterministic and the binary codec is lossless).
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv1 := filepath.Join(dir, "t.csv")
	bin := filepath.Join(dir, "t.gsfb")
	csv2 := filepath.Join(dir, "t2.csv")

	var b strings.Builder
	if err := run(&b, "demo", 7, 48, 12, csv1, "", "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "", 0, 0, 0, "", "", csv1, bin, false); err != nil {
		t.Fatalf("csv->binary: %v", err)
	}
	if err := run(&b, "", 0, 0, 0, "", "", bin, csv2, false); err != nil {
		t.Fatalf("binary->csv: %v", err)
	}
	want, err := os.ReadFile(csv1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(csv2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("CSV -> GSFB -> CSV round trip changed the trace")
	}
	if !strings.Contains(b.String(), "(CSV) -> ") || !strings.Contains(b.String(), "(GSFB) -> ") {
		t.Errorf("converter output missing direction markers:\n%s", b.String())
	}
}

func TestConvertNeedsOutput(t *testing.T) {
	if err := run(&strings.Builder{}, "", 0, 0, 0, "", "", "in.csv", "", false); err == nil {
		t.Fatal("converter accepted a missing output path")
	}
}

func TestSuite(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", 0, 0, 0, "", "", "", "", true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "prod-00") || !strings.Contains(out, "prod-34") {
		t.Errorf("suite summary incomplete:\n%s", out)
	}
}

func TestInvalidParams(t *testing.T) {
	if err := run(&strings.Builder{}, "x", 1, 0, 10, "", "", "", "", false); err == nil {
		t.Fatal("accepted zero horizon")
	}
}
