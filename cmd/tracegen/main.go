// Command tracegen generates and inspects the synthetic Azure-like VM
// traces that stand in for the paper's production traces.
//
// Usage:
//
//	tracegen -name demo -seed 42 -hours 336 -rate 24        # summary
//	tracegen -name demo -csv trace.csv                      # export CSV
//	tracegen -name demo -binary trace.gsfb                  # export GSFB binary
//	tracegen -convert trace.csv -o trace.gsfb               # CSV -> binary
//	tracegen -convert trace.gsfb -o trace.csv               # binary -> CSV
//	tracegen -suite                                         # the 35-trace study suite
//
// The converter sniffs the input format from its leading bytes (GSFB
// traces start with the magic "GSFB") and writes the other format, so
// the same flag pair converts in either direction.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/trace"
)

func main() {
	name := flag.String("name", "trace", "trace name")
	seed := flag.Uint64("seed", 42, "generator seed")
	hours := flag.Float64("hours", 24*14, "trace horizon in hours")
	rate := flag.Float64("rate", 24, "mean VM arrivals per hour")
	csvPath := flag.String("csv", "", "write the full trace as CSV to this path")
	binPath := flag.String("binary", "", "write the full trace as GSFB binary to this path")
	convert := flag.String("convert", "", "convert this trace file (CSV or GSFB, sniffed) to the other format")
	convertOut := flag.String("o", "", "converter output path (required with -convert)")
	suite := flag.Bool("suite", false, "summarise the 35-trace production-like suite")
	flag.Parse()

	if err := run(os.Stdout, *name, *seed, *hours, *rate, *csvPath, *binPath, *convert, *convertOut, *suite); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, name string, seed uint64, hours, rate float64, csvPath, binPath, convert, convertOut string, suite bool) error {
	if convert != "" {
		return runConvert(w, convert, convertOut)
	}
	if suite {
		traces, err := trace.ProductionSuite()
		if err != nil {
			return err
		}
		t := report.Table{
			Title:  "Production-like trace suite (stand-in for the paper's 35 Azure traces)",
			Header: []string{"trace", "VMs", "full-node", "mean cores", "mean life (h)", "peak cores"},
		}
		for _, tr := range traces {
			s := trace.Summarise(tr)
			t.AddRow(tr.Name, strconv.Itoa(s.VMs), strconv.Itoa(s.FullNodeVMs),
				fmt.Sprintf("%.1f", s.MeanCores), fmt.Sprintf("%.1f", s.MeanLifetime),
				strconv.Itoa(s.PeakCoreDmd))
		}
		return t.Render(w)
	}

	p := trace.DefaultParams(name, seed)
	p.HorizonHours = hours
	p.ArrivalsPerHour = rate
	tr, err := trace.Generate(p)
	if err != nil {
		return err
	}
	s := trace.Summarise(tr)
	fmt.Fprintf(w, "trace %s: %d VMs over %.0f h\n", tr.Name, s.VMs, tr.Horizon)
	fmt.Fprintf(w, "  mean cores %.1f, mean memory %.0f GB, mean lifetime %.1f h\n",
		s.MeanCores, s.MeanMemoryGB, s.MeanLifetime)
	fmt.Fprintf(w, "  full-node VMs %d, mean max-memory fraction %.2f\n", s.FullNodeVMs, s.MeanMaxMem)
	fmt.Fprintf(w, "  peak demand: %d cores, %s memory\n", s.PeakCoreDmd, s.PeakMemoryDmd)

	if csvPath != "" {
		if err := writeFile(csvPath, func(f io.Writer) error { return trace.WriteCSV(f, tr) }); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d VMs to %s\n", len(tr.VMs), csvPath)
	}
	if binPath != "" {
		if err := writeFile(binPath, func(f io.Writer) error { return trace.WriteBinary(f, tr) }); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d VMs to %s (GSFB binary)\n", len(tr.VMs), binPath)
	}
	return nil
}

// runConvert converts one trace file between CSV and GSFB binary,
// sniffing the input format from its magic bytes.
func runConvert(w io.Writer, in, out string) error {
	if out == "" {
		return fmt.Errorf("-convert needs an output path (-o)")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := bufio.NewReader(f)
	head, err := rd.Peek(4)
	if err != nil && err != io.EOF {
		return fmt.Errorf("reading %s: %w", in, err)
	}

	if bytes.Equal(head, []byte("GSFB")) {
		tr, err := trace.ReadBinary(rd)
		if err != nil {
			return err
		}
		if err := writeFile(out, func(f io.Writer) error { return trace.WriteCSV(f, tr) }); err != nil {
			return err
		}
		fmt.Fprintf(w, "converted %s (GSFB) -> %s (CSV), %d VMs\n", in, out, len(tr.VMs))
		return nil
	}
	tr, err := trace.ReadCSV(rd, strings.TrimSuffix(filepath.Base(in), filepath.Ext(in)))
	if err != nil {
		return err
	}
	if err := writeFile(out, func(f io.Writer) error { return trace.WriteBinary(f, tr) }); err != nil {
		return err
	}
	fmt.Fprintf(w, "converted %s (CSV) -> %s (GSFB), %d VMs\n", in, out, len(tr.VMs))
	return nil
}

// writeFile creates path and writes through fn, folding the close
// error in.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := fn(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
