// Command tracegen generates and inspects the synthetic Azure-like VM
// traces that stand in for the paper's production traces.
//
// Usage:
//
//	tracegen -name demo -seed 42 -hours 336 -rate 24        # summary
//	tracegen -name demo -csv trace.csv                      # export
//	tracegen -suite                                         # the 35-trace study suite
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/trace"
)

func main() {
	name := flag.String("name", "trace", "trace name")
	seed := flag.Uint64("seed", 42, "generator seed")
	hours := flag.Float64("hours", 24*14, "trace horizon in hours")
	rate := flag.Float64("rate", 24, "mean VM arrivals per hour")
	csvPath := flag.String("csv", "", "write the full trace as CSV to this path")
	suite := flag.Bool("suite", false, "summarise the 35-trace production-like suite")
	flag.Parse()

	if err := run(os.Stdout, *name, *seed, *hours, *rate, *csvPath, *suite); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, name string, seed uint64, hours, rate float64, csvPath string, suite bool) error {
	if suite {
		traces, err := trace.ProductionSuite()
		if err != nil {
			return err
		}
		t := report.Table{
			Title:  "Production-like trace suite (stand-in for the paper's 35 Azure traces)",
			Header: []string{"trace", "VMs", "full-node", "mean cores", "mean life (h)", "peak cores"},
		}
		for _, tr := range traces {
			s := trace.Summarise(tr)
			t.AddRow(tr.Name, strconv.Itoa(s.VMs), strconv.Itoa(s.FullNodeVMs),
				fmt.Sprintf("%.1f", s.MeanCores), fmt.Sprintf("%.1f", s.MeanLifetime),
				strconv.Itoa(s.PeakCoreDmd))
		}
		return t.Render(w)
	}

	p := trace.DefaultParams(name, seed)
	p.HorizonHours = hours
	p.ArrivalsPerHour = rate
	tr, err := trace.Generate(p)
	if err != nil {
		return err
	}
	s := trace.Summarise(tr)
	fmt.Fprintf(w, "trace %s: %d VMs over %.0f h\n", tr.Name, s.VMs, tr.Horizon)
	fmt.Fprintf(w, "  mean cores %.1f, mean memory %.0f GB, mean lifetime %.1f h\n",
		s.MeanCores, s.MeanMemoryGB, s.MeanLifetime)
	fmt.Fprintf(w, "  full-node VMs %d, mean max-memory fraction %.2f\n", s.FullNodeVMs, s.MeanMaxMem)
	fmt.Fprintf(w, "  peak demand: %d cores, %s memory\n", s.PeakCoreDmd, s.PeakMemoryDmd)

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		werr := trace.WriteCSV(f, tr)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(w, "wrote %d VMs to %s\n", len(tr.VMs), csvPath)
	}
	return nil
}
