// Command gsf regenerates the paper's tables and figures from the GSF
// reproduction.
//
// Usage:
//
//	gsf list                      list available experiments
//	gsf run <experiment> [...]    run one or more experiments
//	gsf all                       run everything (slow: full packing study)
//	gsf all -quick                run everything with reduced trace counts
//	gsf artifact [dir]            write the artifact's output files (Table VII)
//
// Paper experiments: fig1 fig2 fig7 fig8 fig9 fig10 fig11 fig12 table1
// table2 table3 table4 table8 sec5 maintenance sec7 lowload.
// Extension studies: memtier storage power growth lifetime harvest
// diversity search dynci frontier.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/greensku/gsf/internal/experiments"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

func ciOf(v float64) units.CarbonIntensity { return units.CarbonIntensity(v) }

type runner func(w io.Writer, quick bool) error

var registry = map[string]runner{
	"fig1": func(w io.Writer, _ bool) error {
		r, err := experiments.Fig1()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"fig2": func(w io.Writer, _ bool) error {
		r, err := experiments.Fig2()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"table1": func(w io.Writer, _ bool) error {
		return experiments.Table1(w)
	},
	"sec5": func(w io.Writer, _ bool) error {
		e, err := experiments.Sec5WorkedExample()
		if err != nil {
			return err
		}
		return e.Render(w)
	},
	"maintenance": func(w io.Writer, _ bool) error {
		rows, err := experiments.Sec5Maintenance()
		if err != nil {
			return err
		}
		return experiments.RenderMaintenance(w, rows)
	},
	"fig7": func(w io.Writer, _ bool) error {
		curves, err := experiments.Fig7()
		if err != nil {
			return err
		}
		for _, ac := range curves {
			if err := experiments.RenderCurves(w, "Fig. 7", ac); err != nil {
				return err
			}
		}
		return nil
	},
	"table2": func(w io.Writer, _ bool) error {
		r, err := experiments.Table2()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"table3": func(w io.Writer, _ bool) error {
		factors, err := experiments.Table3(hw.GreenSKUEfficient())
		if err != nil {
			return err
		}
		return experiments.RenderTable3(w, factors)
	},
	"fig8": func(w io.Writer, _ bool) error {
		r, err := experiments.Fig8()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"lowload": func(w io.Writer, _ bool) error {
		r, err := experiments.LowLoad()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "§VI low-load latency medians: vs Gen1 %.3f (paper 0.92), vs Gen2 %.3f (paper 0.98), vs Gen3 %.3f (paper 1.16)\n",
			r.MedianVsGen1, r.MedianVsGen2, r.MedianVsGen3)
		return err
	},
	"fig9": func(w io.Writer, quick bool) error {
		r, err := packing(quick)
		if err != nil {
			return err
		}
		return r.RenderFig9(w)
	},
	"fig10": func(w io.Writer, quick bool) error {
		r, err := packing(quick)
		if err != nil {
			return err
		}
		return r.RenderFig10(w)
	},
	"table4": func(w io.Writer, _ bool) error {
		rows, err := experiments.SavingsTable("paper-calibrated")
		if err != nil {
			return err
		}
		return experiments.RenderSavingsTable(w,
			"Table IV: per-core savings vs Gen3 baseline (paper-calibrated data)", rows, experiments.PaperTable4)
	},
	"table8": func(w io.Writer, _ bool) error {
		rows, err := experiments.SavingsTable("open-source")
		if err != nil {
			return err
		}
		return experiments.RenderSavingsTable(w,
			"Table VIII: per-core savings vs Gen3 baseline (open data)", rows, experiments.PaperTable8)
	},
	"fig11": func(w io.Writer, quick bool) error {
		r, err := experiments.CISweep(sweepOpt("paper-calibrated", quick))
		if err != nil {
			return err
		}
		return r.Render(w, "Fig. 11: cluster savings vs carbon intensity (paper-calibrated data)")
	},
	"fig12": func(w io.Writer, quick bool) error {
		r, err := experiments.CISweep(sweepOpt("open-source", quick))
		if err != nil {
			return err
		}
		return r.Render(w, "Fig. 12: cluster savings vs carbon intensity (open data)")
	},
	"sec7": func(w io.Writer, _ bool) error {
		r, err := experiments.Sec7()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"memtier": func(w io.Writer, _ bool) error {
		r, err := experiments.MemTier()
		if err != nil {
			return err
		}
		return experiments.RenderMemTier(w, r)
	},
	"storage": func(w io.Writer, _ bool) error {
		plan, err := experiments.StoragePlan()
		if err != nil {
			return err
		}
		return experiments.RenderStoragePlan(w, plan)
	},
	"power": func(w io.Writer, _ bool) error {
		r, err := experiments.PowerStudy()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"growth": func(w io.Writer, _ bool) error {
		r, err := experiments.GrowthStudy()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"search": func(w io.Writer, _ bool) error {
		r, err := experiments.DesignSearch()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"lifetime": func(w io.Writer, _ bool) error {
		r, err := experiments.Lifetime()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"harvest": func(w io.Writer, _ bool) error {
		r, err := experiments.Harvest()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"diversity": func(w io.Writer, _ bool) error {
		r, err := experiments.Diversity()
		if err != nil {
			return err
		}
		return r.Render(w)
	},
	"frontier": func(w io.Writer, quick bool) error {
		opt := experiments.DefaultFrontierOptions()
		if quick {
			opt = experiments.QuickFrontierOptions()
		}
		r, err := experiments.Frontier(opt)
		if err != nil {
			return err
		}
		return r.Render(w, "Frontier: SKU design-space search (carbon/perf/density Pareto set)")
	},
	"dynci": func(w io.Writer, quick bool) error {
		opt := experiments.DefaultDynCIOptions()
		if quick {
			opt.Traces = 6
		}
		r, err := experiments.DynCI(opt)
		if err != nil {
			return err
		}
		return r.Render(w, "Dynamic CI: carbon-aware temporal scheduling under a diurnal grid")
	},
}

func packing(quick bool) (experiments.PackingResult, error) {
	opt := experiments.DefaultPackingOptions()
	if quick {
		opt.Traces = 8
	}
	return experiments.Packing(opt)
}

func sweepOpt(dataset string, quick bool) experiments.CISweepOptions {
	opt := experiments.DefaultCISweepOptions(dataset)
	if quick {
		opt.CIs = opt.CIs[:0]
		for _, ci := range []float64{0.01, 0.1, 0.35} {
			opt.CIs = append(opt.CIs, ciOf(ci))
		}
	}
	return opt
}

func names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gsf:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gsf {list|run <experiment>...|all|artifact [dir]} [-quick]")
	}
	fs := flag.NewFlagSet("gsf", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduce trace counts and sweep points")
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch cmd {
	case "artifact":
		dir := "generated_figures"
		if rest := fs.Args(); len(rest) > 0 {
			dir = rest[0]
		}
		written, err := experiments.WriteArtifacts(dir, *quick)
		if err != nil {
			return err
		}
		for _, p := range written {
			fmt.Fprintln(w, "wrote", p)
		}
		return nil
	case "list":
		for _, name := range names() {
			fmt.Fprintln(w, name)
		}
		return nil
	case "all":
		for _, name := range names() {
			fmt.Fprintf(w, "== %s ==\n", name)
			if err := registry[name](w, *quick); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	case "run":
		targets := fs.Args()
		if len(targets) == 0 {
			return fmt.Errorf("run: name at least one experiment (see 'gsf list')")
		}
		for _, name := range targets {
			r, ok := registry[name]
			if !ok {
				return fmt.Errorf("unknown experiment %q (see 'gsf list')", name)
			}
			if err := r(w, *quick); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}
