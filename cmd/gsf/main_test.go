package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig1", "fig11", "table3", "table8", "sec5", "sec7", "memtier", "search"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestRunQuickExperiments(t *testing.T) {
	// Exercise the cheap experiments end-to-end through the CLI.
	var b strings.Builder
	err := run([]string{"run", "fig1", "table1", "sec5", "maintenance", "table4", "table8", "sec7", "storage", "growth"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Fig. 1", "Table I", "worked example", "C_OOS",
		"Table IV", "Table VIII", "GreenSKU-Full", "stripe plan", "Growth-buffer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"run", "fig99"}, &strings.Builder{}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
	if err := run([]string{"bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("accepted unknown command")
	}
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("accepted empty args")
	}
	if err := run([]string{"run"}, &strings.Builder{}); err == nil {
		t.Fatal("accepted run without targets")
	}
}
