package main

import (
	"strings"
	"testing"
)

func TestWorkedExampleOutput(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "GreenSKU-CXL", "worked-example", 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The §V intermediates must appear with the paper's values.
	for _, want := range []string{"403.3", "1644.0", "16 servers", "space-constrained", "26804.0", "Paper (§V)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOtherSKUAndDataset(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "GreenSKU-Full", "open-source", 0.2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "GreenSKU-Full") || !strings.Contains(out, "0.200") {
		t.Errorf("output missing SKU or CI:\n%s", out)
	}
	if strings.Contains(out, "Paper (§V)") {
		t.Error("paper footer should only print for the worked example")
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "NoSuchSKU", "worked-example", 0); err == nil {
		t.Error("accepted unknown SKU")
	}
	if err := run(&b, "Baseline", "no-such-dataset", 0); err == nil {
		t.Error("accepted unknown dataset")
	}
	// The worked-example dataset has no Genoa carbon data; the model
	// must error cleanly rather than fabricate numbers.
	if err := run(&b, "Baseline", "worked-example", 0); err == nil {
		t.Error("accepted a SKU missing from the dataset")
	}
}
