// Command carboncalc walks through §V's worked example — the
// GreenSKU-CXL server/rack carbon calculation — printing every
// intermediate value next to the number the paper prints, and then
// shows the same calculation for any of the paper's SKU configurations
// under any built-in dataset.
//
// Usage:
//
//	carboncalc                        # the §V worked example
//	carboncalc -sku GreenSKU-Full -dataset open-source -ci 0.1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

func main() {
	sku := flag.String("sku", "GreenSKU-CXL", "SKU configuration (Baseline, Baseline-Resized, GreenSKU-Efficient, GreenSKU-CXL, GreenSKU-Full)")
	dataset := flag.String("dataset", "worked-example", "carbon dataset (worked-example, open-source, paper-calibrated)")
	ci := flag.Float64("ci", 0, "carbon intensity in kgCO2e/kWh (0 = dataset default)")
	flag.Parse()
	if err := run(os.Stdout, *sku, *dataset, *ci); err != nil {
		fmt.Fprintln(os.Stderr, "carboncalc:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, skuName, datasetName string, ci float64) error {
	data, ok := carbondata.Datasets()[datasetName]
	if !ok {
		return fmt.Errorf("unknown dataset %q", datasetName)
	}
	var sku hw.SKU
	found := false
	for _, s := range hw.TableIVConfigs() {
		if s.Name == skuName {
			sku = s
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown SKU %q", skuName)
	}
	m, err := carbon.New(data)
	if err != nil {
		return err
	}
	intensity := data.DefaultCI
	if ci > 0 {
		intensity = units.CarbonIntensity(ci)
	}

	srv, err := m.Server(sku)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SKU %s under dataset %s at CI %s\n\n", sku.Name, data.Name, intensity)
	fmt.Fprintf(w, "Server level (Eq. 1 with derate %.2f):\n", data.DerateFactor)
	for _, p := range srv.Parts {
		fmt.Fprintf(w, "  %-6s power %8.1f W   embodied %9.1f kgCO2e\n", p.Name, float64(p.Power), float64(p.Embodied))
	}
	fmt.Fprintf(w, "  P_s      = %.1f W\n", float64(srv.Power))
	fmt.Fprintf(w, "  E_emb,s  = %.1f kgCO2e\n\n", float64(srv.Embodied))

	rack, err := m.Rack(sku)
	if err != nil {
		return err
	}
	constraint := "space"
	if rack.PowerConstrained {
		constraint = "power"
	}
	op := m.Operational(rack, intensity)
	fmt.Fprintf(w, "Rack level (Eqs. 2-3; %d U space, %.0f W cap):\n", data.RackSpaceU, float64(data.RackPowerCap))
	fmt.Fprintf(w, "  N_s      = %d servers (%s-constrained)\n", rack.ServersPerRack, constraint)
	fmt.Fprintf(w, "  P_r      = %.1f W\n", float64(rack.Power))
	fmt.Fprintf(w, "  E_emb,r  = %.1f kgCO2e\n", float64(rack.Embodied))
	fmt.Fprintf(w, "  E_op,r   = %.1f kgCO2e over %.0f years\n", float64(op), data.Lifetime.YearsValue())
	fmt.Fprintf(w, "  E_r      = %.1f kgCO2e\n", float64(op)+float64(rack.Embodied))
	fmt.Fprintf(w, "  N_c,r    = %d cores\n\n", rack.Cores)

	pc, err := m.PerCore(sku, intensity)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Per core: operational %.2f + embodied %.2f = %.2f kgCO2e\n",
		float64(pc.Operational), float64(pc.Embodied), float64(pc.Total()))
	if sku.Name == "GreenSKU-CXL" && data.Name == "worked-example" {
		fmt.Fprintln(w, "\nPaper (§V): E_emb,s=1644, P_s=403, N_s=16, E_emb,r=26804, P_r=6953, E_op,r=36547, E_r=63351, 31 kg/core")
	}
	return nil
}
