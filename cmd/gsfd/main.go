// Command gsfd serves GSF evaluations over HTTP: per-core emissions,
// Table IV/VIII savings rows, and full framework evaluations, answered
// online from a worker pool with request deduplication and an exact
// result cache, and scraped through an OpenMetrics /metrics endpoint.
//
// Usage:
//
//	gsfd                              # listen on :8080
//	gsfd -addr :9090 -workers 8 -queue 128 -cache-ttl 5m
//	gsfd -audit                       # audit invariants on every evaluation
//	gsfd -rate 50 -burst 200          # per-client rate limiting
//	gsfd -self http://n1:8080 -peers http://n1:8080,http://n2:8080
//
// Endpoints (see docs/API.md for the full wire reference):
//
//	POST /v1/percore    per-core emissions for a SKU at a carbon intensity
//	POST /v1/savings    per-core savings of a SKU vs a baseline
//	POST /v1/evaluate   full framework evaluation over a synthetic workload
//	                    (accepts ci_series for a time-varying grid)
//	POST /v1/batch      many percore/savings/evaluate items, one response;
//	                    streams NDJSON or SSE when Accept asks for it
//	POST /v1/sweep      one green/baseline pair across many grid CIs
//	POST /v1/ciseries   validate a carbon-intensity timeseries and report
//	                    its statistics and effective CI
//	GET  /v1/skus       SKU catalog (sorted by name)
//	GET  /v1/datasets   dataset catalog (sorted by name)
//	GET  /v1/limits     operational limits (batch size, pool, rate, replicas)
//	GET  /metrics       OpenMetrics scrape
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 while draining)
//
// With -peers, replicas consistent-hash the evaluation keyspace and
// forward requests to the owning replica, so the fleet's caches
// partition instead of duplicating.
//
// On SIGINT/SIGTERM the daemon drains gracefully: /readyz flips to 503,
// the listener stops accepting connections, and in-flight evaluations
// get -drain (default 30s) to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/server"
)

// options is the parsed command line.
type options struct {
	addr  string
	drain time.Duration
	audit bool
	cfg   server.Config
}

// parseFlags builds the daemon options from argv (split out of main for
// testing).
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("gsfd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.DurationVar(&o.drain, "drain", 30*time.Second, "graceful shutdown timeout")
	fs.IntVar(&o.cfg.Workers, "workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	fs.IntVar(&o.cfg.QueueDepth, "queue", 0, "request queue capacity (0 = default 64)")
	fs.IntVar(&o.cfg.CacheEntries, "cache-entries", 0, "result cache capacity (0 = default 1024)")
	fs.DurationVar(&o.cfg.CacheTTL, "cache-ttl", 0, "result cache TTL (0 = default 15m)")
	fs.DurationVar(&o.cfg.RequestTimeout, "timeout", 0, "per-request deadline (0 = default 30s)")
	fs.IntVar(&o.cfg.MaxBatchItems, "batch-max", 0, "max items per /v1/batch or /v1/sweep request (0 = default 256)")
	fs.IntVar(&o.cfg.MaxDesignCandidates, "design-max", 0, "max candidates per /v1/design search (0 = default 4096)")
	fs.Float64Var(&o.cfg.RatePerSec, "rate", 0, "per-client request rate limit in requests/s (0 = unlimited)")
	fs.IntVar(&o.cfg.RateBurst, "burst", 0, "per-client token-bucket burst (0 = 4x rate)")
	fs.StringVar(&o.cfg.SelfURL, "self", "", "this replica's advertised base URL (required with -peers)")
	peers := fs.String("peers", "", "comma-separated replica base URLs; turns on keyspace sharding")
	fs.BoolVar(&o.audit, "audit", false, "check runtime invariants on every evaluation; violations count in /metrics")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				o.cfg.Peers = append(o.cfg.Peers, p)
			}
		}
	}
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	o.cfg.Logger = log
	if err := run(o, log); err != nil {
		log.Error("gsfd failed", "err", err)
		os.Exit(1)
	}
}

func run(o options, log *slog.Logger) error {
	if o.audit {
		// One recorder for the whole process: the server threads it
		// through every framework, and installing it as the process
		// default also audits paths no explicit checker reaches (the
		// queueing runs inside memoized performance profiling).
		rec := audit.NewRecorder()
		audit.SetDefault(rec)
		o.cfg.Audit = rec
		log.Info("invariant auditing enabled")
	}
	s, err := server.New(o.cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("gsfd listening", "addr", o.addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, stop the listener,
	// let in-flight requests finish, then drain the worker pool.
	log.Info("draining", "timeout", o.drain)
	s.SetReady(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	s.Close()
	log.Info("gsfd stopped")
	return err
}
