package main

import (
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" {
		t.Errorf("addr %q", o.addr)
	}
	if o.drain != 30*time.Second {
		t.Errorf("drain %v", o.drain)
	}
	// Zero values defer to server.Config defaults.
	if o.cfg.Workers != 0 || o.cfg.QueueDepth != 0 {
		t.Errorf("pool flags not zero: %+v", o.cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	o, err := parseFlags([]string{
		"-addr", ":9090", "-workers", "8", "-queue", "128",
		"-cache-entries", "64", "-cache-ttl", "5m", "-timeout", "10s", "-drain", "1m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9090" || o.cfg.Workers != 8 || o.cfg.QueueDepth != 128 {
		t.Errorf("parsed %+v", o)
	}
	if o.cfg.CacheEntries != 64 || o.cfg.CacheTTL != 5*time.Minute {
		t.Errorf("cache flags %+v", o.cfg)
	}
	if o.cfg.RequestTimeout != 10*time.Second || o.drain != time.Minute {
		t.Errorf("timeouts %+v", o)
	}
}

func TestParseFlagsAudit(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.audit {
		t.Error("auditing on by default")
	}
	o, err = parseFlags([]string{"-audit"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.audit {
		t.Error("-audit not parsed")
	}
}

func TestParseFlagsRejectsPositionalArgs(t *testing.T) {
	if _, err := parseFlags([]string{"serve"}); err == nil {
		t.Error("positional argument accepted")
	}
}

func TestParseFlagsShardingAndRate(t *testing.T) {
	o, err := parseFlags([]string{
		"-rate", "50", "-burst", "200",
		"-self", "http://n1:8080",
		"-peers", "http://n1:8080, http://n2:8080,http://n3:8080,",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.RatePerSec != 50 || o.cfg.RateBurst != 200 {
		t.Errorf("rate flags %+v", o.cfg)
	}
	if o.cfg.SelfURL != "http://n1:8080" {
		t.Errorf("self %q", o.cfg.SelfURL)
	}
	want := []string{"http://n1:8080", "http://n2:8080", "http://n3:8080"}
	if len(o.cfg.Peers) != len(want) {
		t.Fatalf("peers %v, want %v", o.cfg.Peers, want)
	}
	for i := range want {
		if o.cfg.Peers[i] != want[i] {
			t.Errorf("peer %d = %q, want %q", i, o.cfg.Peers[i], want[i])
		}
	}
}
