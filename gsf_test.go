package gsf_test

import (
	"testing"

	gsf "github.com/greensku/gsf"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	fw, err := gsf.NewFramework(gsf.OpenSourceData())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gsf.SyntheticWorkload("api-test", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Trim to keep the test quick.
	tr.VMs = tr.VMs[:600]
	tr.Horizon = 24 * 3
	for i := range tr.VMs {
		if tr.VMs[i].Depart > tr.Horizon {
			tr.VMs[i].Depart = tr.Horizon
		}
	}
	ev, err := fw.Evaluate(gsf.Input{
		Green:    gsf.GreenSKUFull(),
		Baseline: gsf.BaselineGen3(),
		Workload: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.ClusterSavings <= 0 {
		t.Fatalf("cluster savings = %v, want positive", ev.ClusterSavings)
	}
}

func TestDatasets(t *testing.T) {
	for _, d := range []gsf.Dataset{gsf.OpenSourceData(), gsf.PaperCalibratedData(), gsf.WorkedExampleData()} {
		if err := d.Validate(); err != nil {
			t.Errorf("dataset %s: %v", d.Name, err)
		}
	}
}

func TestSKUConstructors(t *testing.T) {
	for _, sku := range []gsf.SKU{
		gsf.BaselineGen3(), gsf.BaselineResized(),
		gsf.GreenSKUEfficient(), gsf.GreenSKUCXL(), gsf.GreenSKUFull(),
	} {
		if err := sku.Validate(); err != nil {
			t.Errorf("%s: %v", sku.Name, err)
		}
	}
}
