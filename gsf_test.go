package gsf_test

import (
	"testing"

	gsf "github.com/greensku/gsf"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	fw, err := gsf.NewFramework(gsf.OpenSourceData())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gsf.SyntheticWorkload("api-test", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Trim to keep the test quick.
	tr.VMs = tr.VMs[:600]
	tr.Horizon = 24 * 3
	for i := range tr.VMs {
		if tr.VMs[i].Depart > tr.Horizon {
			tr.VMs[i].Depart = tr.Horizon
		}
	}
	ev, err := fw.Evaluate(gsf.Input{
		Green:    gsf.GreenSKUFull(),
		Baseline: gsf.BaselineGen3(),
		Workload: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.ClusterSavings <= 0 {
		t.Fatalf("cluster savings = %v, want positive", ev.ClusterSavings)
	}
}

func TestDatasets(t *testing.T) {
	for _, d := range []gsf.Dataset{gsf.OpenSourceData(), gsf.PaperCalibratedData(), gsf.WorkedExampleData()} {
		if err := d.Validate(); err != nil {
			t.Errorf("dataset %s: %v", d.Name, err)
		}
	}
}

func TestSKUConstructors(t *testing.T) {
	for _, sku := range []gsf.SKU{
		gsf.BaselineGen3(), gsf.BaselineResized(),
		gsf.GreenSKUEfficient(), gsf.GreenSKUCXL(), gsf.GreenSKUFull(),
	} {
		if err := sku.Validate(); err != nil {
			t.Errorf("%s: %v", sku.Name, err)
		}
	}
}

func TestModelHandle(t *testing.T) {
	m, err := gsf.NewModel(gsf.OpenSourceData())
	if err != nil {
		t.Fatal(err)
	}
	if m.Data().Name != "open-source" {
		t.Errorf("dataset name %q", m.Data().Name)
	}

	// The handle must answer exactly like the one-shot helpers.
	pcWant, err := gsf.PerCoreEmissions(gsf.OpenSourceData(), gsf.GreenSKUFull(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pcGot, err := m.PerCore(gsf.GreenSKUFull(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pcGot != pcWant {
		t.Errorf("Model.PerCore %+v != PerCoreEmissions %+v", pcGot, pcWant)
	}

	svWant, err := gsf.PerCoreSavings(gsf.OpenSourceData(), gsf.GreenSKUCXL(), gsf.BaselineGen3(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	svGot, err := m.Savings(gsf.GreenSKUCXL(), gsf.BaselineGen3(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if svGot != svWant {
		t.Errorf("Model.Savings %+v != PerCoreSavings %+v", svGot, svWant)
	}

	// A framework built from the handle evaluates like NewFramework.
	if m.Framework() == nil || m.Framework().Carbon == nil {
		t.Error("Model.Framework missing carbon model")
	}
}

func TestCatalogs(t *testing.T) {
	skus := gsf.SKUCatalog()
	if len(skus) != 7 {
		t.Fatalf("SKU catalog has %d entries, want 7", len(skus))
	}
	for _, sku := range skus {
		if err := sku.Validate(); err != nil {
			t.Errorf("catalog SKU %s invalid: %v", sku.Name, err)
		}
	}
	datasets := gsf.DatasetCatalog()
	if len(datasets) != 3 {
		t.Fatalf("dataset catalog has %d entries, want 3", len(datasets))
	}
	for _, d := range datasets {
		if _, err := gsf.NewModel(d); err != nil {
			t.Errorf("catalog dataset %s invalid: %v", d.Name, err)
		}
	}
}
